"""Feature and label preprocessing used before training candidate MLPs.

The ECAD flow ingests raw CSV tabular data; before it reaches a worker the
features are standardized (or min-max scaled) and labels are one-hot encoded.
Both transforms are fitted on training data only and then applied to test
folds, so no information leaks across the fold boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "OneHotEncoder",
    "one_hot",
    "train_test_split",
]


class StandardScaler:
    """Zero-mean, unit-variance feature scaling fitted on training data."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty feature matrix")
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        # Constant features would divide by zero; leave them centred at 0.
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform()")
        features = np.asarray(features, dtype=float)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return the transformed matrix."""
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        """Undo the standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform()")
        return np.asarray(features, dtype=float) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each feature into ``[0, 1]`` based on the training-set range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature minimum and range."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty feature matrix")
        self.min_ = features.min(axis=0)
        feature_range = features.max(axis=0) - self.min_
        feature_range[feature_range == 0.0] = 1.0
        self.range_ = feature_range
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned min-max scaling."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform()")
        return (np.asarray(features, dtype=float) - self.min_) / self.range_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return the transformed matrix."""
        return self.fit(features).transform(features)


class OneHotEncoder:
    """Map integer class labels to one-hot rows (and back)."""

    def __init__(self, num_classes: int | None = None) -> None:
        self.num_classes = num_classes

    def fit(self, labels: np.ndarray) -> "OneHotEncoder":
        """Infer the number of classes from the training labels if not given."""
        labels = np.asarray(labels).reshape(-1).astype(int)
        if labels.size == 0:
            raise ValueError("cannot fit an encoder on an empty label array")
        inferred = int(labels.max()) + 1
        if self.num_classes is None:
            self.num_classes = inferred
        elif inferred > self.num_classes:
            raise ValueError(
                f"labels contain class {inferred - 1} but encoder was built for {self.num_classes} classes"
            )
        return self

    def transform(self, labels: np.ndarray) -> np.ndarray:
        """Return the one-hot matrix for ``labels``."""
        if self.num_classes is None:
            raise RuntimeError("OneHotEncoder must be fitted (or given num_classes) before transform()")
        return one_hot(labels, self.num_classes)

    def fit_transform(self, labels: np.ndarray) -> np.ndarray:
        """Fit on ``labels`` and return the one-hot matrix."""
        return self.fit(labels).transform(labels)

    def inverse_transform(self, encoded: np.ndarray) -> np.ndarray:
        """Return the integer labels for a one-hot (or probability) matrix."""
        encoded = np.asarray(encoded)
        if encoded.ndim != 2:
            raise ValueError(f"expected a 2-D one-hot matrix, got shape {encoded.shape}")
        return np.argmax(encoded, axis=1)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into a ``(len(labels), num_classes)`` matrix."""
    labels = np.asarray(labels).reshape(-1).astype(int)
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes - 1}], got range [{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.size, num_classes), dtype=float)
    encoded[np.arange(labels.size), labels] = 1.0
    return encoded


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    seed: int | None = None,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split features/labels into train and test partitions.

    Parameters
    ----------
    test_fraction:
        Fraction of samples assigned to the test partition (0 < f < 1).
    seed:
        Seed for the shuffling RNG; pass a value for reproducible splits.
    stratify:
        When true (default) the split preserves per-class proportions, which
        keeps small datasets such as the Credit-g equivalent balanced.

    Returns
    -------
    (train_features, test_features, train_labels, test_labels)
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels).reshape(-1)
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"features ({features.shape[0]} rows) and labels ({labels.shape[0]}) disagree in length"
        )
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    num_samples = features.shape[0]
    if num_samples < 2:
        raise ValueError("need at least two samples to split")

    if stratify:
        test_indices: list[int] = []
        for class_label in np.unique(labels):
            class_indices = np.flatnonzero(labels == class_label)
            rng.shuffle(class_indices)
            take = max(1, int(round(test_fraction * class_indices.size)))
            take = min(take, class_indices.size - 1) if class_indices.size > 1 else take
            test_indices.extend(class_indices[:take].tolist())
        test_mask = np.zeros(num_samples, dtype=bool)
        test_mask[np.asarray(test_indices, dtype=int)] = True
    else:
        order = rng.permutation(num_samples)
        test_count = max(1, int(round(test_fraction * num_samples)))
        test_mask = np.zeros(num_samples, dtype=bool)
        test_mask[order[:test_count]] = True

    return (
        features[~test_mask],
        features[test_mask],
        labels[~test_mask],
        labels[test_mask],
    )
