"""Weight initialization schemes for dense layers.

Initialization matters for the ECAD search: candidate networks are trained for a
small number of epochs during fitness evaluation, so a poor initialization can
make a good architecture look bad.  The default follows the activation-aware
convention (He initialization for rectifier-family activations, Glorot/Xavier
otherwise), mirroring what Keras/TensorFlow would have used in the original
paper's training loop.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Initializer",
    "Zeros",
    "RandomNormal",
    "RandomUniform",
    "GlorotUniform",
    "GlorotNormal",
    "HeUniform",
    "HeNormal",
    "get_initializer",
    "default_initializer_for",
    "available_initializers",
]


class Initializer:
    """Base class: produces a weight matrix given a shape and an RNG."""

    name: str = "initializer"

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Zeros(Initializer):
    """All-zero initialization (used for bias vectors)."""

    name = "zeros"

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=float)


class RandomNormal(Initializer):
    """Gaussian initialization with configurable standard deviation."""

    name = "random_normal"

    def __init__(self, stddev: float = 0.05) -> None:
        if stddev <= 0:
            raise ValueError(f"stddev must be positive, got {stddev}")
        self.stddev = float(stddev)

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.stddev, size=shape)


class RandomUniform(Initializer):
    """Uniform initialization on ``[-limit, limit]``."""

    name = "random_uniform"

    def __init__(self, limit: float = 0.05) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = float(limit)

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-self.limit, self.limit, size=shape)


def _fans(shape: tuple[int, int]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a 2-D weight shape."""
    if len(shape) != 2:
        raise ValueError(f"expected a 2-D shape (fan_in, fan_out), got {shape}")
    fan_in, fan_out = int(shape[0]), int(shape[1])
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"shape dimensions must be positive, got {shape}")
    return fan_in, fan_out


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform initialization: ``U(-sqrt(6/(fi+fo)), +...)``."""

    name = "glorot_uniform"

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class GlorotNormal(Initializer):
    """Glorot/Xavier normal initialization: ``N(0, 2/(fi+fo))``."""

    name = "glorot_normal"

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fans(shape)
        stddev = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, stddev, size=shape)


class HeUniform(Initializer):
    """He uniform initialization: ``U(-sqrt(6/fi), +sqrt(6/fi))``."""

    name = "he_uniform"

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fans(shape)
        limit = np.sqrt(6.0 / fan_in)
        return rng.uniform(-limit, limit, size=shape)


class HeNormal(Initializer):
    """He normal initialization: ``N(0, 2/fi)``."""

    name = "he_normal"

    def __call__(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fans(shape)
        stddev = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, stddev, size=shape)


_REGISTRY: dict[str, type[Initializer]] = {
    Zeros.name: Zeros,
    RandomNormal.name: RandomNormal,
    RandomUniform.name: RandomUniform,
    GlorotUniform.name: GlorotUniform,
    GlorotNormal.name: GlorotNormal,
    HeUniform.name: HeUniform,
    HeNormal.name: HeNormal,
}

#: Activations whose layers default to He initialization.
_RECTIFIER_ACTIVATIONS = frozenset({"relu", "leaky_relu", "elu", "softplus"})


def available_initializers() -> list[str]:
    """Return the sorted names of all registered initializers."""
    return sorted(_REGISTRY)


def get_initializer(name: str | Initializer) -> Initializer:
    """Resolve an initializer by name (or pass an instance through)."""
    if isinstance(name, Initializer):
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown initializer {name!r}; available: {', '.join(available_initializers())}"
        )
    return _REGISTRY[key]()


def default_initializer_for(activation_name: str) -> Initializer:
    """Return the conventional initializer for a given activation.

    Rectifier-family activations (relu, leaky_relu, elu, softplus) get
    :class:`HeUniform`; everything else gets :class:`GlorotUniform`.
    """
    if str(activation_name).strip().lower() in _RECTIFIER_ACTIVATIONS:
        return HeUniform()
    return GlorotUniform()
