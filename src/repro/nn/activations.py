"""Activation functions for the from-scratch MLP substrate.

The ECAD search space mutates the activation function of every hidden layer, so
activations are first-class objects here: each one knows how to compute its
forward value and the derivative used during backpropagation, and each one has a
stable string name so genomes can be serialized and hashed for the evaluation
cache.

All activations operate element-wise on numpy arrays and never modify their
input in place.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "ELU",
    "Softplus",
    "Softmax",
    "get_activation",
    "available_activations",
]


class Activation:
    """Base class for element-wise activation functions.

    Subclasses implement :meth:`forward` and :meth:`derivative`.  The
    derivative is expressed as a function of the *pre-activation* input ``z``
    (not the activated output), which keeps the backpropagation code in
    :mod:`repro.nn.layers` uniform across activations.
    """

    #: Stable identifier used in genomes, configuration files and caches.
    name: str = "activation"

    def forward(self, z: np.ndarray) -> np.ndarray:
        """Return the activation applied element-wise to ``z``."""
        raise NotImplementedError

    def derivative(self, z: np.ndarray) -> np.ndarray:
        """Return d(activation)/dz evaluated element-wise at ``z``."""
        raise NotImplementedError

    def __call__(self, z: np.ndarray) -> np.ndarray:
        return self.forward(z)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Activation) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


class Identity(Activation):
    """Linear activation ``f(z) = z`` (used for output layers in regression)."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.asarray(z, dtype=float)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(z, dtype=float))


class ReLU(Activation):
    """Rectified linear unit ``f(z) = max(z, 0)``."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(float)


class LeakyReLU(Activation):
    """Leaky rectified linear unit with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        return np.where(z > 0.0, z, self.alpha * z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        return np.where(z > 0.0, 1.0, self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid ``f(z) = 1 / (1 + exp(-z))``, numerically stabilized."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        t = np.tanh(z)
        return 1.0 - t * t


class ELU(Activation):
    """Exponential linear unit with configurable ``alpha``."""

    name = "elu"

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        return np.where(z > 0.0, z, self.alpha * (np.exp(np.minimum(z, 0.0)) - 1.0))

    def derivative(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        return np.where(z > 0.0, 1.0, self.alpha * np.exp(np.minimum(z, 0.0)))


class Softplus(Activation):
    """Smooth approximation of ReLU: ``f(z) = log(1 + exp(z))``."""

    name = "softplus"

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        return np.logaddexp(0.0, z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return Sigmoid().forward(z)


class Softmax(Activation):
    """Row-wise softmax used on the output layer for classification.

    The derivative returned here is the diagonal approximation; the training
    loop pairs softmax with cross-entropy, whose combined gradient is computed
    analytically in :mod:`repro.nn.losses`, so the full Jacobian is never
    required.
    """

    name = "softmax"

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        shifted = z - np.max(z, axis=-1, keepdims=True)
        exp_z = np.exp(shifted)
        return exp_z / np.sum(exp_z, axis=-1, keepdims=True)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return s * (1.0 - s)


_REGISTRY: dict[str, type[Activation]] = {
    Identity.name: Identity,
    ReLU.name: ReLU,
    LeakyReLU.name: LeakyReLU,
    Sigmoid.name: Sigmoid,
    Tanh.name: Tanh,
    ELU.name: ELU,
    Softplus.name: Softplus,
    Softmax.name: Softmax,
}


def available_activations() -> list[str]:
    """Return the sorted names of all registered activation functions."""
    return sorted(_REGISTRY)


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through).

    Parameters
    ----------
    name:
        Either an :class:`Activation` instance (returned unchanged) or one of
        the names reported by :func:`available_activations`.

    Raises
    ------
    ValueError
        If the name is not registered.
    """
    if isinstance(name, Activation):
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown activation {name!r}; available: {', '.join(available_activations())}"
        )
    return _REGISTRY[key]()
