"""Candidate evaluation: single-fold and k-fold accuracy measurement.

The paper reports two evaluation protocols:

* **10-fold cross-validation** following the OpenML estimation procedure for
  Credit-g, HAR, Phishing and Bioresponse (Table I), and
* **single fold** (pre-split train/test) for MNIST and Fashion-MNIST
  (Table II) and for the Pareto-frontier searches (Table IV).

Both are implemented here on top of the trainer, and both return an
:class:`EvaluationResult` whose fields map directly onto the metrics the ECAD
fitness functions consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .metrics import accuracy
from .mlp import MLP, MLPSpec
from .preprocessing import StandardScaler
from .training import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "EvaluationResult",
    "kfold_indices",
    "evaluate_single_fold",
    "evaluate_kfold",
    "evaluate_single_fold_batch",
    "evaluate_kfold_batch",
]


@dataclass
class EvaluationResult:
    """Outcome of training + testing one MLP specification.

    Attributes
    ----------
    accuracy:
        Mean test accuracy over folds (single value for 1-fold evaluation).
    fold_accuracies:
        Per-fold accuracies, length 1 for single-fold evaluation.
    train_seconds:
        Total wall-clock seconds spent training and evaluating all folds.
    parameter_count:
        Trainable parameter count of the evaluated specification.
    histories:
        Per-fold training histories (convergence curves, early stopping info).
    """

    accuracy: float
    fold_accuracies: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    parameter_count: int = 0
    histories: list[TrainingHistory] = field(default_factory=list)

    @property
    def accuracy_std(self) -> float:
        """Standard deviation of per-fold accuracy (0 for a single fold)."""
        if len(self.fold_accuracies) < 2:
            return 0.0
        return float(np.std(self.fold_accuracies))


def kfold_indices(num_samples: int, num_folds: int, seed: int | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``num_folds`` (train_indices, test_indices) pairs.

    Folds are contiguous slices of a shuffled permutation, matching the
    standard cross-validation estimation procedure the paper cites.  Every
    sample appears in exactly one test fold.
    """
    if num_folds < 2:
        raise ValueError(f"num_folds must be >= 2, got {num_folds}")
    if num_samples < num_folds:
        raise ValueError(
            f"cannot split {num_samples} samples into {num_folds} folds"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_samples)
    fold_sizes = np.full(num_folds, num_samples // num_folds, dtype=int)
    fold_sizes[: num_samples % num_folds] += 1
    folds: list[tuple[np.ndarray, np.ndarray]] = []
    start = 0
    for size in fold_sizes:
        test_idx = order[start : start + size]
        train_idx = np.concatenate([order[:start], order[start + size :]])
        folds.append((train_idx, test_idx))
        start += size
    return folds


def _train_and_score(
    spec: MLPSpec,
    train_x: np.ndarray,
    train_y: np.ndarray,
    test_x: np.ndarray,
    test_y: np.ndarray,
    training_config: TrainingConfig,
    seed: int | None,
    standardize: bool,
) -> tuple[float, TrainingHistory]:
    """Train one model on one fold and return (test accuracy, history)."""
    if standardize:
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
    model = MLP(spec, seed=seed)
    trainer = Trainer(training_config, seed=seed)
    history = trainer.fit(model, train_x, train_y)
    score = accuracy(model.predict(test_x), test_y)
    return score, history


def evaluate_single_fold(
    spec: MLPSpec,
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    training_config: TrainingConfig | None = None,
    seed: int | None = None,
    standardize: bool = True,
) -> EvaluationResult:
    """Train on the given train split and report accuracy on the test split.

    This is the protocol used for MNIST / Fashion-MNIST (Table II) and the
    Pareto-frontier searches (Table IV).
    """
    training_config = training_config or TrainingConfig()
    start = time.perf_counter()
    score, history = _train_and_score(
        spec,
        np.asarray(train_features, dtype=float),
        np.asarray(train_labels).reshape(-1),
        np.asarray(test_features, dtype=float),
        np.asarray(test_labels).reshape(-1),
        training_config,
        seed,
        standardize,
    )
    elapsed = time.perf_counter() - start
    return EvaluationResult(
        accuracy=score,
        fold_accuracies=[score],
        train_seconds=elapsed,
        parameter_count=spec.parameter_count,
        histories=[history],
    )


def evaluate_kfold(
    spec: MLPSpec,
    features: np.ndarray,
    labels: np.ndarray,
    num_folds: int = 10,
    training_config: TrainingConfig | None = None,
    seed: int | None = None,
    standardize: bool = True,
) -> EvaluationResult:
    """k-fold cross-validated accuracy of one MLP specification.

    This is the OpenML 10-fold protocol used for Table I.  The same
    specification is retrained from scratch on every fold; the reported
    accuracy is the mean over folds.
    """
    training_config = training_config or TrainingConfig()
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels).reshape(-1)
    folds = kfold_indices(features.shape[0], num_folds, seed=seed)

    start = time.perf_counter()
    fold_accuracies: list[float] = []
    histories: list[TrainingHistory] = []
    for fold_number, (train_idx, test_idx) in enumerate(folds):
        fold_seed = None if seed is None else seed + fold_number
        score, history = _train_and_score(
            spec,
            features[train_idx],
            labels[train_idx],
            features[test_idx],
            labels[test_idx],
            training_config,
            fold_seed,
            standardize,
        )
        fold_accuracies.append(score)
        histories.append(history)
    elapsed = time.perf_counter() - start

    return EvaluationResult(
        accuracy=float(np.mean(fold_accuracies)),
        fold_accuracies=fold_accuracies,
        train_seconds=elapsed,
        parameter_count=spec.parameter_count,
        histories=histories,
    )


# ------------------------------------------------------------ batched paths
def _score_runs_batched(
    spec: MLPSpec,
    runs: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int | None]],
    training_config: TrainingConfig,
    standardize: bool,
    max_group_size: int,
) -> list[tuple[float, "TrainingHistory"]]:
    """Batch-train heterogeneous runs of one spec, preserving input order.

    Each run is ``(train_x, train_y, test_x, test_y, seed)``.  Runs are
    standardized per run (scaler fit on that run's train split, exactly as
    :func:`_train_and_score`), grouped by array shape so stacking is legal,
    chunked to bound peak memory, and trained through
    :func:`~repro.nn.batched.train_and_score_batch`.  Results are
    bit-identical to looping :func:`_train_and_score` with the same seeds.
    """
    from .batched import train_and_score_batch

    if max_group_size < 1:
        raise ValueError(f"max_group_size must be >= 1, got {max_group_size}")

    # Convert each distinct input array exactly once.  Runs that share array
    # objects (the shared pre-split path) keep sharing them after conversion,
    # which lets the batched trainer stack the group with zero-copy broadcast
    # views instead of per-run copies.
    label_cache: dict[int, np.ndarray] = {}

    def _flat_labels(labels: np.ndarray) -> np.ndarray:
        flat = label_cache.get(id(labels))
        if flat is None:
            flat = np.asarray(labels).reshape(-1)
            label_cache[id(labels)] = flat
        return flat

    prepared: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int | None]] = []
    for train_x, train_y, test_x, test_y, seed in runs:
        train_x = np.asarray(train_x, dtype=float)
        test_x = np.asarray(test_x, dtype=float)
        if standardize:
            scaler = StandardScaler().fit(train_x)
            train_x = scaler.transform(train_x)
            test_x = scaler.transform(test_x)
        prepared.append((train_x, _flat_labels(train_y), test_x, _flat_labels(test_y), seed))

    groups: dict[tuple, list[int]] = {}
    for position, (train_x, _, test_x, _, _) in enumerate(prepared):
        groups.setdefault((train_x.shape, test_x.shape), []).append(position)

    results: list[tuple[float, "TrainingHistory"] | None] = [None] * len(runs)
    for positions in groups.values():
        for start in range(0, len(positions), max_group_size):
            chunk = positions[start : start + max_group_size]
            scored = train_and_score_batch(
                spec,
                [prepared[p][0] for p in chunk],
                [prepared[p][1] for p in chunk],
                [prepared[p][2] for p in chunk],
                [prepared[p][3] for p in chunk],
                training_config=training_config,
                seeds=[prepared[p][4] for p in chunk],
            )
            for position, outcome in zip(chunk, scored):
                results[position] = outcome
    return results  # type: ignore[return-value]


def evaluate_single_fold_batch(
    spec: MLPSpec,
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    training_config: TrainingConfig | None = None,
    seeds: list[int | None] | None = None,
    standardize: bool = True,
    max_group_size: int = 8,
) -> list[EvaluationResult]:
    """Single-fold evaluation of many same-spec candidates on one train/test split.

    The candidates share the dataset arrays and differ only in seed (the
    master derives one per genome), so preprocessing is shared and training
    is fused across the group.  Returns one :class:`EvaluationResult` per
    seed, bit-identical to calling :func:`evaluate_single_fold` in a loop —
    except the wall-clock fields, which report each candidate's share of the
    fused group time.
    """
    training_config = training_config or TrainingConfig()
    if seeds is None:
        seeds = [None]
    start = time.perf_counter()
    runs = [
        (
            np.asarray(train_features, dtype=float),
            np.asarray(train_labels).reshape(-1),
            np.asarray(test_features, dtype=float),
            np.asarray(test_labels).reshape(-1),
            seed,
        )
        for seed in seeds
    ]
    scored = _score_runs_batched(spec, runs, training_config, standardize, max_group_size)
    elapsed = time.perf_counter() - start
    per_candidate_seconds = elapsed / len(seeds)
    return [
        EvaluationResult(
            accuracy=score,
            fold_accuracies=[score],
            train_seconds=per_candidate_seconds,
            parameter_count=spec.parameter_count,
            histories=[history],
        )
        for score, history in scored
    ]


def evaluate_kfold_batch(
    spec: MLPSpec,
    features: np.ndarray,
    labels: np.ndarray,
    num_folds: int = 10,
    training_config: TrainingConfig | None = None,
    seeds: list[int | None] | None = None,
    standardize: bool = True,
    max_group_size: int = 8,
) -> list[EvaluationResult]:
    """k-fold evaluation of many same-spec candidates with fused training.

    Every candidate keeps its own fold split (``kfold_indices`` seeded by its
    seed) and per-fold seeds, exactly as :func:`evaluate_kfold`; the
    candidate x fold runs are pooled and batch-trained together.  Returns one
    :class:`EvaluationResult` per seed, bit-identical to the looped scalar
    path up to wall-clock fields.
    """
    training_config = training_config or TrainingConfig()
    if seeds is None:
        seeds = [None]
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels).reshape(-1)

    start = time.perf_counter()
    runs: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int | None]] = []
    owners: list[tuple[int, int]] = []
    for candidate, seed in enumerate(seeds):
        folds = kfold_indices(features.shape[0], num_folds, seed=seed)
        for fold_number, (train_idx, test_idx) in enumerate(folds):
            fold_seed = None if seed is None else seed + fold_number
            runs.append(
                (
                    features[train_idx],
                    labels[train_idx],
                    features[test_idx],
                    labels[test_idx],
                    fold_seed,
                )
            )
            owners.append((candidate, fold_number))
    scored = _score_runs_batched(spec, runs, training_config, standardize, max_group_size)
    elapsed = time.perf_counter() - start
    per_candidate_seconds = elapsed / len(seeds)

    results: list[EvaluationResult] = []
    for candidate in range(len(seeds)):
        fold_accuracies: list[float] = []
        histories: list[TrainingHistory] = []
        for (owner, _), (score, history) in zip(owners, scored):
            if owner == candidate:
                fold_accuracies.append(score)
                histories.append(history)
        results.append(
            EvaluationResult(
                accuracy=float(np.mean(fold_accuracies)),
                fold_accuracies=fold_accuracies,
                train_seconds=per_candidate_seconds,
                parameter_count=spec.parameter_count,
                histories=histories,
            )
        )
    return results
