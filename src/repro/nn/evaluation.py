"""Candidate evaluation: single-fold and k-fold accuracy measurement.

The paper reports two evaluation protocols:

* **10-fold cross-validation** following the OpenML estimation procedure for
  Credit-g, HAR, Phishing and Bioresponse (Table I), and
* **single fold** (pre-split train/test) for MNIST and Fashion-MNIST
  (Table II) and for the Pareto-frontier searches (Table IV).

Both are implemented here on top of the trainer, and both return an
:class:`EvaluationResult` whose fields map directly onto the metrics the ECAD
fitness functions consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .metrics import accuracy
from .mlp import MLP, MLPSpec
from .preprocessing import StandardScaler
from .training import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "EvaluationResult",
    "kfold_indices",
    "evaluate_single_fold",
    "evaluate_kfold",
]


@dataclass
class EvaluationResult:
    """Outcome of training + testing one MLP specification.

    Attributes
    ----------
    accuracy:
        Mean test accuracy over folds (single value for 1-fold evaluation).
    fold_accuracies:
        Per-fold accuracies, length 1 for single-fold evaluation.
    train_seconds:
        Total wall-clock seconds spent training and evaluating all folds.
    parameter_count:
        Trainable parameter count of the evaluated specification.
    histories:
        Per-fold training histories (convergence curves, early stopping info).
    """

    accuracy: float
    fold_accuracies: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    parameter_count: int = 0
    histories: list[TrainingHistory] = field(default_factory=list)

    @property
    def accuracy_std(self) -> float:
        """Standard deviation of per-fold accuracy (0 for a single fold)."""
        if len(self.fold_accuracies) < 2:
            return 0.0
        return float(np.std(self.fold_accuracies))


def kfold_indices(num_samples: int, num_folds: int, seed: int | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``num_folds`` (train_indices, test_indices) pairs.

    Folds are contiguous slices of a shuffled permutation, matching the
    standard cross-validation estimation procedure the paper cites.  Every
    sample appears in exactly one test fold.
    """
    if num_folds < 2:
        raise ValueError(f"num_folds must be >= 2, got {num_folds}")
    if num_samples < num_folds:
        raise ValueError(
            f"cannot split {num_samples} samples into {num_folds} folds"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_samples)
    fold_sizes = np.full(num_folds, num_samples // num_folds, dtype=int)
    fold_sizes[: num_samples % num_folds] += 1
    folds: list[tuple[np.ndarray, np.ndarray]] = []
    start = 0
    for size in fold_sizes:
        test_idx = order[start : start + size]
        train_idx = np.concatenate([order[:start], order[start + size :]])
        folds.append((train_idx, test_idx))
        start += size
    return folds


def _train_and_score(
    spec: MLPSpec,
    train_x: np.ndarray,
    train_y: np.ndarray,
    test_x: np.ndarray,
    test_y: np.ndarray,
    training_config: TrainingConfig,
    seed: int | None,
    standardize: bool,
) -> tuple[float, TrainingHistory]:
    """Train one model on one fold and return (test accuracy, history)."""
    if standardize:
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
    model = MLP(spec, seed=seed)
    trainer = Trainer(training_config, seed=seed)
    history = trainer.fit(model, train_x, train_y)
    score = accuracy(model.predict(test_x), test_y)
    return score, history


def evaluate_single_fold(
    spec: MLPSpec,
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    training_config: TrainingConfig | None = None,
    seed: int | None = None,
    standardize: bool = True,
) -> EvaluationResult:
    """Train on the given train split and report accuracy on the test split.

    This is the protocol used for MNIST / Fashion-MNIST (Table II) and the
    Pareto-frontier searches (Table IV).
    """
    training_config = training_config or TrainingConfig()
    start = time.perf_counter()
    score, history = _train_and_score(
        spec,
        np.asarray(train_features, dtype=float),
        np.asarray(train_labels).reshape(-1),
        np.asarray(test_features, dtype=float),
        np.asarray(test_labels).reshape(-1),
        training_config,
        seed,
        standardize,
    )
    elapsed = time.perf_counter() - start
    return EvaluationResult(
        accuracy=score,
        fold_accuracies=[score],
        train_seconds=elapsed,
        parameter_count=spec.parameter_count,
        histories=[history],
    )


def evaluate_kfold(
    spec: MLPSpec,
    features: np.ndarray,
    labels: np.ndarray,
    num_folds: int = 10,
    training_config: TrainingConfig | None = None,
    seed: int | None = None,
    standardize: bool = True,
) -> EvaluationResult:
    """k-fold cross-validated accuracy of one MLP specification.

    This is the OpenML 10-fold protocol used for Table I.  The same
    specification is retrained from scratch on every fold; the reported
    accuracy is the mean over folds.
    """
    training_config = training_config or TrainingConfig()
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels).reshape(-1)
    folds = kfold_indices(features.shape[0], num_folds, seed=seed)

    start = time.perf_counter()
    fold_accuracies: list[float] = []
    histories: list[TrainingHistory] = []
    for fold_number, (train_idx, test_idx) in enumerate(folds):
        fold_seed = None if seed is None else seed + fold_number
        score, history = _train_and_score(
            spec,
            features[train_idx],
            labels[train_idx],
            features[test_idx],
            labels[test_idx],
            training_config,
            fold_seed,
            standardize,
        )
        fold_accuracies.append(score)
        histories.append(history)
    elapsed = time.perf_counter() - start

    return EvaluationResult(
        accuracy=float(np.mean(fold_accuracies)),
        fold_accuracies=fold_accuracies,
        train_seconds=elapsed,
        parameter_count=spec.parameter_count,
        histories=histories,
    )
