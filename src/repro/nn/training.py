"""Mini-batch training loop used by the ECAD simulation worker.

Each co-design candidate that reaches a worker is trained from scratch with a
bounded budget (epochs, early stopping patience).  The trainer records a
per-epoch history so the analysis layer can inspect convergence, and it
measures wall-clock training time because Table III of the paper reports
average and total evaluation time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .metrics import accuracy
from .mlp import MLP
from .optimizers import Optimizer, get_optimizer
from .preprocessing import one_hot

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of the candidate-training loop.

    These are deliberately modest: the evolutionary search evaluates thousands
    of candidates (Table III), so each individual training run must stay cheap.

    Attributes
    ----------
    epochs:
        Maximum number of passes over the training data.
    batch_size:
        Mini-batch size; also the default inference batch for hardware models.
    optimizer:
        Optimizer name understood by :func:`repro.nn.optimizers.get_optimizer`.
    learning_rate:
        Learning rate forwarded to the optimizer.
    early_stopping_patience:
        Stop when validation accuracy has not improved for this many epochs;
        ``0`` disables early stopping.
    validation_fraction:
        Portion of the training split held out for early stopping.
    shuffle:
        Whether mini-batches are drawn from a reshuffled order every epoch.
    """

    epochs: int = 30
    batch_size: int = 32
    optimizer: str = "adam"
    learning_rate: float = 1e-3
    early_stopping_patience: int = 5
    validation_fraction: float = 0.1
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.early_stopping_patience < 0:
            raise ValueError(
                f"early_stopping_patience must be >= 0, got {self.early_stopping_patience}"
            )
        if not 0.0 <= self.validation_fraction < 0.5:
            raise ValueError(
                f"validation_fraction must be in [0, 0.5), got {self.validation_fraction}"
            )


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    validation_accuracy: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    wall_time_seconds: float = 0.0

    @property
    def best_validation_accuracy(self) -> float:
        """Highest validation accuracy seen, or ``nan`` when no validation used."""
        if not self.validation_accuracy:
            return float("nan")
        return max(self.validation_accuracy)

    @property
    def final_train_loss(self) -> float:
        """Training loss at the last completed epoch."""
        if not self.train_loss:
            return float("nan")
        return self.train_loss[-1]


class Trainer:
    """Trains an :class:`repro.nn.mlp.MLP` on a labelled dataset."""

    def __init__(self, config: TrainingConfig | None = None, seed: int | None = None) -> None:
        self.config = config or TrainingConfig()
        self._rng = np.random.default_rng(seed)

    def fit(
        self,
        model: MLP,
        features: np.ndarray,
        labels: np.ndarray,
        optimizer: Optimizer | None = None,
    ) -> TrainingHistory:
        """Train ``model`` in place and return the per-epoch history.

        Parameters
        ----------
        model:
            The MLP to train; its weights are modified in place.
        features:
            2-D feature matrix, already preprocessed/standardized.
        labels:
            Integer class labels (one-hot encoding is performed internally).
        optimizer:
            Optional pre-built optimizer; by default one is constructed from
            the training configuration.
        """
        config = self.config
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels).reshape(-1).astype(int)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"features ({features.shape[0]} rows) and labels ({labels.shape[0]}) disagree"
            )
        if features.shape[1] != model.spec.input_size:
            raise ValueError(
                f"model expects {model.spec.input_size} features, data has {features.shape[1]}"
            )
        if labels.size and labels.max() >= model.spec.output_size:
            raise ValueError(
                f"labels contain class {labels.max()} but model has {model.spec.output_size} outputs"
            )

        if optimizer is None:
            optimizer = get_optimizer(config.optimizer, learning_rate=config.learning_rate)

        history = TrainingHistory()
        start_time = time.perf_counter()

        train_x, train_y, val_x, val_y = self._split_validation(features, labels)
        encoded_train_y = one_hot(train_y, model.spec.output_size)

        best_val_accuracy = -np.inf
        epochs_without_improvement = 0
        num_samples = train_x.shape[0]

        for epoch in range(config.epochs):
            order = (
                self._rng.permutation(num_samples) if config.shuffle else np.arange(num_samples)
            )
            epoch_losses: list[float] = []
            for start in range(0, num_samples, config.batch_size):
                batch_idx = order[start : start + config.batch_size]
                loss_value = model.train_step(train_x[batch_idx], encoded_train_y[batch_idx])
                optimizer.step(model.parameters(), model.gradients())
                epoch_losses.append(loss_value)

            history.train_loss.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
            history.train_accuracy.append(accuracy(model.predict(train_x), train_y))
            history.epochs_run = epoch + 1

            if val_x is not None:
                val_accuracy = accuracy(model.predict(val_x), val_y)
                history.validation_accuracy.append(val_accuracy)
                if val_accuracy > best_val_accuracy + 1e-9:
                    best_val_accuracy = val_accuracy
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                if (
                    config.early_stopping_patience > 0
                    and epochs_without_improvement >= config.early_stopping_patience
                ):
                    history.stopped_early = True
                    break

        history.wall_time_seconds = time.perf_counter() - start_time
        return history

    def _split_validation(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Hold out a validation slice when early stopping is enabled."""
        config = self.config
        if config.validation_fraction <= 0.0 or config.early_stopping_patience == 0:
            return features, labels, None, None
        num_samples = features.shape[0]
        val_count = int(round(config.validation_fraction * num_samples))
        if val_count < 1 or num_samples - val_count < 1:
            return features, labels, None, None
        order = self._rng.permutation(num_samples)
        val_idx, train_idx = order[:val_count], order[val_count:]
        return features[train_idx], labels[train_idx], features[val_idx], labels[val_idx]
