"""Multilayer perceptron model assembled from dense layers.

This is the network family the ECAD search explores: a stack of
fully-connected layers whose count, widths, activations and bias usage come
from an :class:`repro.core.genome.MLPGenome`.  The model exposes both the
numerical interface (forward / backward / predict) used by the simulation
worker and the *structural* interface (GEMM shapes, parameter counts) used by
the hardware models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .activations import Softmax, get_activation
from .layers import DenseLayer, GemmShape
from .losses import CategoricalCrossEntropy, Loss, get_loss

__all__ = ["MLPSpec", "MLP"]


@dataclass(frozen=True)
class MLPSpec:
    """Structural description of an MLP, independent of trained weights.

    This is the "ANN description" the paper passes between the evolutionary
    engine and the workers: enough to construct the network and to derive the
    GEMM decomposition for hardware mapping, but carrying no weight values.

    Attributes
    ----------
    input_size:
        Number of input features (defines the first layer's ``k`` dimension).
    output_size:
        Number of classes (the final layer's ``n`` dimension).
    hidden_sizes:
        Width of each hidden layer, in order.
    activations:
        Activation name per hidden layer.  A single-element tuple is broadcast
        over all hidden layers.
    use_bias:
        Whether every layer carries a bias vector.
    output_activation:
        Activation of the output layer, ``softmax`` for classification.
    """

    input_size: int
    output_size: int
    hidden_sizes: tuple[int, ...] = (100,)
    activations: tuple[str, ...] = ("relu",)
    use_bias: bool = True
    output_activation: str = "softmax"

    def __post_init__(self) -> None:
        if self.input_size <= 0:
            raise ValueError(f"input_size must be positive, got {self.input_size}")
        if self.output_size <= 0:
            raise ValueError(f"output_size must be positive, got {self.output_size}")
        hidden = tuple(int(h) for h in self.hidden_sizes)
        if any(h <= 0 for h in hidden):
            raise ValueError(f"hidden layer sizes must be positive, got {self.hidden_sizes}")
        object.__setattr__(self, "hidden_sizes", hidden)
        activations = tuple(str(a) for a in self.activations)
        if len(activations) == 1 and len(hidden) > 1:
            activations = activations * len(hidden)
        if hidden and len(activations) != len(hidden):
            raise ValueError(
                f"got {len(activations)} activations for {len(hidden)} hidden layers"
            )
        # Validate names eagerly so bad specs fail at construction time.
        for name in activations + (self.output_activation,):
            get_activation(name)
        object.__setattr__(self, "activations", activations)

    # ----------------------------------------------------------- structure
    @property
    def layer_sizes(self) -> tuple[int, ...]:
        """All layer widths including input and output."""
        return (self.input_size, *self.hidden_sizes, self.output_size)

    @property
    def num_layers(self) -> int:
        """Number of weight layers (hidden layers + output layer)."""
        return len(self.hidden_sizes) + 1

    @property
    def total_neurons(self) -> int:
        """Total neurons across hidden and output layers (paper's "network size")."""
        return sum(self.hidden_sizes) + self.output_size

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters of the network."""
        sizes = self.layer_sizes
        count = 0
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            count += fan_in * fan_out
            if self.use_bias:
                count += fan_out
        return count

    def gemm_shapes(self, batch_size: int) -> list[GemmShape]:
        """Per-layer GEMM shapes at the given batch size (the HW workload)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        sizes = self.layer_sizes
        return [
            GemmShape(m=int(batch_size), k=fan_in, n=fan_out)
            for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
        ]

    def flops_per_sample(self) -> int:
        """Floating point operations needed for a single inference."""
        return sum(shape.flops for shape in self.gemm_shapes(batch_size=1))

    def to_dict(self) -> dict:
        """JSON-serializable representation (used in configs and caches)."""
        return {
            "input_size": self.input_size,
            "output_size": self.output_size,
            "hidden_sizes": list(self.hidden_sizes),
            "activations": list(self.activations),
            "use_bias": self.use_bias,
            "output_activation": self.output_activation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MLPSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            input_size=int(data["input_size"]),
            output_size=int(data["output_size"]),
            hidden_sizes=tuple(int(h) for h in data.get("hidden_sizes", (100,))),
            activations=tuple(data.get("activations", ("relu",))),
            use_bias=bool(data.get("use_bias", True)),
            output_activation=str(data.get("output_activation", "softmax")),
        )


@dataclass
class _ForwardCache:
    """Bookkeeping for one training step (kept out of the public surface)."""

    batch_size: int = 0
    outputs: np.ndarray = field(default_factory=lambda: np.empty(0))


class MLP:
    """A trainable multilayer perceptron built from an :class:`MLPSpec`.

    The model owns its layers and a loss function; optimization is delegated to
    the trainer in :mod:`repro.nn.training` so the same model class can be used
    for plain inference inside workers.
    """

    def __init__(self, spec: MLPSpec, loss: str | Loss = "categorical_cross_entropy", seed: int | None = None) -> None:
        self.spec = spec
        self.loss = get_loss(loss)
        self._rng = np.random.default_rng(seed)
        self.layers: list[DenseLayer] = []
        sizes = spec.layer_sizes
        hidden_activations = list(spec.activations)
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_output = index == len(sizes) - 2
            activation = spec.output_activation if is_output else hidden_activations[index]
            layer = DenseLayer(fan_in, fan_out, activation=activation, use_bias=spec.use_bias)
            layer.initialize(self._rng)
            self.layers.append(layer)

    # ------------------------------------------------------------- inference
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a full forward pass and return the output activations."""
        outputs = np.asarray(inputs, dtype=float)
        if outputs.ndim == 1:
            outputs = outputs.reshape(1, -1)
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Class probabilities for each input row."""
        return self.forward(inputs, training=False)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class labels for each input row."""
        return np.argmax(self.predict_proba(inputs), axis=1)

    # -------------------------------------------------------------- training
    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Forward + backward over one mini-batch; returns the batch loss.

        Gradients are left on the layers; the caller (trainer) applies the
        optimizer update.
        """
        outputs = self.forward(inputs, training=True)
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            raise ValueError("targets must be one-hot encoded (2-D)")
        loss_value = self.loss.forward(outputs, targets)
        gradient = self.loss.gradient(outputs, targets)
        # Softmax + cross-entropy: the loss gradient is already w.r.t. logits.
        output_layer = self.layers[-1]
        uses_analytic_shortcut = (
            isinstance(output_layer.activation, Softmax)
            and isinstance(self.loss, CategoricalCrossEntropy)
        )
        upstream = output_layer.backward(gradient, skip_activation=uses_analytic_shortcut)
        for layer in reversed(self.layers[:-1]):
            upstream = layer.backward(upstream)
        return float(loss_value)

    def evaluate_loss(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Loss over a dataset without touching gradients."""
        outputs = self.forward(inputs, training=False)
        return float(self.loss.forward(outputs, np.asarray(targets, dtype=float)))

    # ------------------------------------------------------------ parameters
    def parameters(self) -> list[np.ndarray]:
        """All trainable arrays across layers, in backprop-stable order."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :meth:`parameters` order."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    @property
    def parameter_count(self) -> int:
        """Total trainable scalars (equal to ``spec.parameter_count``)."""
        return sum(layer.parameter_count for layer in self.layers)

    def gemm_shapes(self, batch_size: int) -> list[GemmShape]:
        """Per-layer GEMM shapes at the given batch size."""
        return self.spec.gemm_shapes(batch_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = " -> ".join(str(s) for s in self.spec.layer_sizes)
        return f"MLP({sizes}, bias={self.spec.use_bias})"
