"""From-scratch numpy MLP substrate.

This subpackage replaces the TensorFlow/Keras training stack used in the
original ECAD experiments: dense layers, activations, losses, optimizers, a
mini-batch trainer, and the single-fold / 10-fold evaluation protocols the
paper's tables rely on.
"""

from .activations import (
    Activation,
    ELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Softplus,
    Tanh,
    available_activations,
    get_activation,
)
from .batched import BatchedTrainer, StackedMLPGroup, train_and_score_batch
from .evaluation import (
    EvaluationResult,
    evaluate_kfold,
    evaluate_kfold_batch,
    evaluate_single_fold,
    evaluate_single_fold_batch,
    kfold_indices,
)
from .initializers import available_initializers, default_initializer_for, get_initializer
from .layers import DenseLayer, GemmShape
from .losses import BinaryCrossEntropy, CategoricalCrossEntropy, MeanSquaredError, get_loss
from .metrics import accuracy, confusion_matrix, error_rate, macro_f1, precision_recall_f1, top_k_accuracy
from .mlp import MLP, MLPSpec
from .optimizers import SGD, Adam, MomentumSGD, Optimizer, RMSProp, available_optimizers, get_optimizer
from .preprocessing import MinMaxScaler, OneHotEncoder, StandardScaler, one_hot, train_test_split
from .training import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "Activation",
    "ELU",
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Softplus",
    "Tanh",
    "available_activations",
    "get_activation",
    "BatchedTrainer",
    "StackedMLPGroup",
    "train_and_score_batch",
    "EvaluationResult",
    "evaluate_kfold",
    "evaluate_kfold_batch",
    "evaluate_single_fold",
    "evaluate_single_fold_batch",
    "kfold_indices",
    "available_initializers",
    "default_initializer_for",
    "get_initializer",
    "DenseLayer",
    "GemmShape",
    "BinaryCrossEntropy",
    "CategoricalCrossEntropy",
    "MeanSquaredError",
    "get_loss",
    "accuracy",
    "confusion_matrix",
    "error_rate",
    "macro_f1",
    "precision_recall_f1",
    "top_k_accuracy",
    "MLP",
    "MLPSpec",
    "SGD",
    "Adam",
    "MomentumSGD",
    "Optimizer",
    "RMSProp",
    "available_optimizers",
    "get_optimizer",
    "MinMaxScaler",
    "OneHotEncoder",
    "StandardScaler",
    "one_hot",
    "train_test_split",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
]
