"""Dense (fully-connected) layer with manual forward / backward passes.

The ECAD flow maps every MLP layer onto a GEMM call (section III-D of the
paper), so each layer here tracks the exact ``(m, k, n)`` GEMM shape it
produces.  The hardware models in :mod:`repro.hardware` consume those shapes
to estimate FPGA and GPU performance without ever running the network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activations import Activation, get_activation
from .initializers import Initializer, Zeros, default_initializer_for, get_initializer

__all__ = ["GemmShape", "DenseLayer"]


@dataclass(frozen=True)
class GemmShape:
    """The ``C[m, n] = A[m, k] @ B[k, n]`` shape produced by one dense layer.

    ``m`` is the batch size, ``k`` the layer input width, ``n`` the number of
    neurons.  These are exactly the three dimensions the paper's hardware
    database worker blocks over the systolic array.
    """

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        for field_name, value in (("m", self.m), ("k", self.k), ("n", self.n)):
            if int(value) <= 0:
                raise ValueError(f"GemmShape.{field_name} must be positive, got {value}")

    @property
    def flops(self) -> int:
        """Floating-point operations for this GEMM (multiply + add per MAC)."""
        return 2 * self.m * self.k * self.n

    @property
    def input_bytes(self) -> int:
        """Bytes of the A and B operands at FP32."""
        return 4 * (self.m * self.k + self.k * self.n)

    @property
    def output_bytes(self) -> int:
        """Bytes of the C result at FP32."""
        return 4 * self.m * self.n

    def with_batch(self, batch_size: int) -> "GemmShape":
        """Return the same layer shape evaluated at a different batch size."""
        return GemmShape(m=int(batch_size), k=self.k, n=self.n)


class DenseLayer:
    """A fully-connected layer ``y = activation(x @ W + b)``.

    Parameters
    ----------
    input_size:
        Width of the incoming feature vector (the GEMM ``k`` dimension).
    output_size:
        Number of neurons (the GEMM ``n`` dimension).
    activation:
        Activation name or instance applied element-wise to the pre-activation.
    use_bias:
        Whether a bias vector is added; the ECAD genome can disable bias.
    weight_initializer / bias_initializer:
        Optional explicit initializers; defaults follow the activation
        (He for rectifiers, Glorot otherwise) and zeros for the bias.
    """

    def __init__(
        self,
        input_size: int,
        output_size: int,
        activation: str | Activation = "relu",
        use_bias: bool = True,
        weight_initializer: str | Initializer | None = None,
        bias_initializer: str | Initializer | None = None,
    ) -> None:
        if int(input_size) <= 0:
            raise ValueError(f"input_size must be positive, got {input_size}")
        if int(output_size) <= 0:
            raise ValueError(f"output_size must be positive, got {output_size}")
        self.input_size = int(input_size)
        self.output_size = int(output_size)
        self.activation = get_activation(activation)
        self.use_bias = bool(use_bias)
        if weight_initializer is None:
            self._weight_initializer = default_initializer_for(self.activation.name)
        else:
            self._weight_initializer = get_initializer(weight_initializer)
        self._bias_initializer = get_initializer(bias_initializer) if bias_initializer else Zeros()

        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        # Cached tensors from the most recent forward pass, used by backward().
        self._last_input: np.ndarray | None = None
        self._last_pre_activation: np.ndarray | None = None
        # Gradients populated by backward().
        self.grad_weights: np.ndarray | None = None
        self.grad_bias: np.ndarray | None = None

    # ------------------------------------------------------------------ setup
    def initialize(self, rng: np.random.Generator) -> None:
        """Allocate and initialize weights (and bias) using ``rng``."""
        self.weights = self._weight_initializer((self.input_size, self.output_size), rng)
        if self.use_bias:
            self.bias = self._bias_initializer((1, self.output_size), rng).reshape(-1)
        else:
            self.bias = None
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros(self.output_size) if self.use_bias else None

    @property
    def is_initialized(self) -> bool:
        return self.weights is not None

    @property
    def parameter_count(self) -> int:
        """Number of trainable scalars in this layer."""
        count = self.input_size * self.output_size
        if self.use_bias:
            count += self.output_size
        return count

    def gemm_shape(self, batch_size: int) -> GemmShape:
        """GEMM shape of this layer for the given batch size."""
        return GemmShape(m=int(batch_size), k=self.input_size, n=self.output_size)

    # ---------------------------------------------------------------- forward
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch of inputs.

        When ``training`` is true the input and pre-activation are cached so a
        subsequent :meth:`backward` call can compute gradients.
        """
        if not self.is_initialized:
            raise RuntimeError("layer must be initialized before calling forward()")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[1] != self.input_size:
            raise ValueError(
                f"expected inputs with {self.input_size} features, got shape {inputs.shape}"
            )
        pre_activation = inputs @ self.weights
        if self.use_bias:
            pre_activation = pre_activation + self.bias
        if training:
            self._last_input = inputs
            self._last_pre_activation = pre_activation
        return self.activation.forward(pre_activation)

    # --------------------------------------------------------------- backward
    def backward(self, upstream_gradient: np.ndarray, skip_activation: bool = False) -> np.ndarray:
        """Backpropagate through the layer.

        Parameters
        ----------
        upstream_gradient:
            Gradient of the loss with respect to this layer's output.
        skip_activation:
            When true, ``upstream_gradient`` is already the gradient with
            respect to the *pre-activation* (used for the softmax +
            cross-entropy analytic shortcut on the output layer).

        Returns
        -------
        numpy.ndarray
            Gradient of the loss with respect to this layer's input, to be
            passed to the previous layer.
        """
        if self._last_input is None or self._last_pre_activation is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        upstream_gradient = np.asarray(upstream_gradient, dtype=float)
        if skip_activation:
            delta = upstream_gradient
        else:
            delta = upstream_gradient * self.activation.derivative(self._last_pre_activation)
        self.grad_weights = self._last_input.T @ delta
        if self.use_bias:
            self.grad_bias = delta.sum(axis=0)
        return delta @ self.weights.T

    # ------------------------------------------------------------- parameters
    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays, in a stable order (weights first, then bias)."""
        if not self.is_initialized:
            raise RuntimeError("layer is not initialized")
        params = [self.weights]
        if self.use_bias:
            params.append(self.bias)
        return params

    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :meth:`parameters` order."""
        if self.grad_weights is None:
            raise RuntimeError("no gradients available; run backward() first")
        grads = [self.grad_weights]
        if self.use_bias:
            grads.append(self.grad_bias)
        return grads

    def set_parameters(self, params: list[np.ndarray]) -> None:
        """Replace the trainable arrays (used by the optimizers and tests)."""
        expected = 2 if self.use_bias else 1
        if len(params) != expected:
            raise ValueError(f"expected {expected} parameter arrays, got {len(params)}")
        weights = np.asarray(params[0], dtype=float)
        if weights.shape != (self.input_size, self.output_size):
            raise ValueError(
                f"weights shape {weights.shape} does not match layer "
                f"({self.input_size}, {self.output_size})"
            )
        self.weights = weights
        if self.use_bias:
            bias = np.asarray(params[1], dtype=float).reshape(-1)
            if bias.shape != (self.output_size,):
                raise ValueError(f"bias shape {bias.shape} does not match ({self.output_size},)")
            self.bias = bias

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DenseLayer({self.input_size} -> {self.output_size}, "
            f"activation={self.activation.name}, bias={self.use_bias})"
        )
