#!/usr/bin/env python3
"""Check that relative Markdown links point at files that exist.

Scans every ``*.md`` file in the repository (skipping dot-directories) for
inline links/images ``[text](target)`` and reference definitions
``[label]: target``, and verifies each relative target resolves to an
existing file or directory. External links (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#section``) are not checked — the job must not
depend on network access.

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed).  Used by the CI docs job; run locally with::

    python tools/check_markdown_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images: [text](target) — target ends at the first unescaped
#: ')' (no nested parentheses in this repo's docs).
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style definitions: [label]: target
REFERENCE_LINK = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Schemes that are intentionally not validated.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    """Every tracked-looking Markdown file under ``root``."""
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def check_file(path: Path, root: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file."""
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks frequently hold example-URL text; strip them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    targets = INLINE_LINK.findall(text) + REFERENCE_LINK.findall(text)
    problems = []
    for target in targets:
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        resolved = (path.parent / candidate).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: broken link -> {target}")
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    problems: list[str] = []
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        problems.extend(check_file(path, root))
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} broken link(s) across {checked} Markdown file(s)")
        return 1
    print(f"all relative links resolve across {checked} Markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
