"""Tests for the Pareto-native multi-objective search API.

Covers the typed objective model (ObjectiveVector / constraints), NSGA-II
machinery (fast non-dominated sorting, crowding distance, selection scheme,
ranking evaluator), the search-strategy registry, the streaming
FrontierArchive (including the exact-match-with-post-hoc acceptance
criterion), async callback-dispatch ordering, and core/pareto edge cases.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.frontier import accuracy_throughput_frontier
from repro.core.callbacks import Callback
from repro.core.config import ECADConfig, OptimizationTargetConfig
from repro.core.engine import EngineConfig, EvolutionaryEngine
from repro.core.errors import ConfigurationError
from repro.core.fitness import (
    FitnessEvaluator,
    FitnessObjective,
    ParetoRankingEvaluator,
    parse_constraint,
)
from repro.core.frontier import FrontierArchive
from repro.core.genome import CoDesignGenome, HardwareGenome, MLPGenome
from repro.core.objectives import Constraint, ObjectiveVector, build_objective_vector
from repro.core.pareto import (
    ParetoPoint,
    crowding_distances,
    evaluation_frontier,
    fast_non_dominated_sort,
    hypervolume_2d,
    knee_point,
    pareto_frontier_indices,
    top_tradeoff_points,
)
from repro.core.search import CoDesignSearch, RandomSearch, _extract_frontier
from repro.core.selection import NSGA2Selection, get_selection
from repro.core.strategy import (
    STRATEGIES,
    EvolutionaryStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.systolic import GridConfig

from tests.conftest import make_fake_evaluation


def _genome(neurons: int = 16, rows: int = 4) -> CoDesignGenome:
    return CoDesignGenome(
        mlp=MLPGenome(hidden_layers=(neurons,), activations=("relu",)),
        hardware=HardwareGenome(grid=GridConfig(rows, 4, 2, 2, 2), batch_size=512),
    )


def _objectives() -> list[FitnessObjective]:
    return [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]


# ---------------------------------------------------------------------------
# Constraints and objective vectors
# ---------------------------------------------------------------------------


class TestConstraints:
    def test_parse_every_operator(self):
        for text, op in (
            ("dsp_usage<=512", "<="),
            ("accuracy>=0.9", ">="),
            ("fpga_latency<0.001", "<"),
            ("fpga_throughput>1000", ">"),
        ):
            constraint = parse_constraint(text)
            assert constraint.op == op
            assert str(parse_constraint(str(constraint))) == str(constraint)

    def test_parse_rejects_malformed_expressions(self):
        for bad in ("dsp_usage", "<=3", "dsp_usage<=", "dsp_usage<=abc", "nope<=1"):
            with pytest.raises(ConfigurationError):
                parse_constraint(bad)

    def test_satisfaction_and_violation(self):
        constraint = Constraint(objective="dsp_usage", op="<=", bound=100.0)
        assert constraint.satisfied(100.0)
        assert not constraint.satisfied(100.5)
        assert constraint.violation(100.5) == pytest.approx(0.5)
        assert constraint.violation(99.0) == 0.0
        strict = Constraint(objective="accuracy", op=">", bound=0.5)
        assert not strict.satisfied(0.5)
        assert strict.satisfied(0.51)

    def test_constraint_feasibility_flows_into_fitness(self):
        # dsp_usage of these genomes is grid-dependent; bound it below usage.
        evaluation = make_fake_evaluation(_genome(rows=8), accuracy=0.9, fpga_outputs=1e6)
        usage = evaluation.genome.hardware.grid.dsp_blocks_used
        evaluator = FitnessEvaluator(_objectives(), constraints=[f"dsp_usage<={usage - 1}"])
        results = evaluator.score_population([evaluation])
        assert results[0].fitness == float("-inf")
        assert not results[0].vector.feasible
        assert results[0].vector.violation > 0
        # A loose bound keeps the candidate feasible with unchanged scoring.
        loose = FitnessEvaluator(_objectives(), constraints=[f"dsp_usage<={usage}"])
        feasible = loose.score_population([evaluation])
        assert feasible[0].vector.feasible
        assert np.isfinite(feasible[0].fitness)


class TestObjectiveVector:
    def test_canonical_negates_minimized_objectives(self):
        vector = ObjectiveVector(
            names=("accuracy", "parameter_count"),
            values=(0.9, 1000.0),
            maximize=(True, False),
        )
        assert vector.canonical == (0.9, -1000.0)
        assert vector.value("accuracy") == pytest.approx(0.9)
        with pytest.raises(KeyError):
            vector.value("nope")

    def test_dominance_respects_directions(self):
        small = ObjectiveVector(("accuracy", "parameter_count"), (0.9, 100.0), (True, False))
        big = ObjectiveVector(("accuracy", "parameter_count"), (0.9, 200.0), (True, False))
        assert small.dominates(big)
        assert not big.dominates(small)

    def test_constrained_dominance(self):
        feasible = ObjectiveVector(("accuracy",), (0.1,), (True,), feasible=True)
        infeasible = ObjectiveVector(
            ("accuracy",), (0.99,), (True,), feasible=False, violation=5.0
        )
        worse_infeasible = ObjectiveVector(
            ("accuracy",), (0.99,), (True,), feasible=False, violation=9.0
        )
        assert feasible.dominates(infeasible)
        assert not infeasible.dominates(feasible)
        assert infeasible.dominates(worse_infeasible)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ObjectiveVector(names=(), values=(), maximize=())
        with pytest.raises(ValueError):
            ObjectiveVector(names=("a",), values=(1.0, 2.0), maximize=(True,))
        a = ObjectiveVector(("accuracy",), (0.5,), (True,))
        b = ObjectiveVector(("fpga_throughput",), (1e6,), (True,))
        with pytest.raises(ValueError):
            a.dominates(b)

    def test_failed_evaluation_builds_infeasible_nan_vector(self):
        from repro.core.candidate import CandidateEvaluation

        failed = CandidateEvaluation(genome=_genome(), error="boom")
        vector = build_objective_vector(failed, _objectives())
        assert not vector.feasible
        assert vector.violation == float("inf")
        assert all(np.isnan(v) for v in vector.values)


# ---------------------------------------------------------------------------
# NSGA-II primitives
# ---------------------------------------------------------------------------


class TestFastNonDominatedSort:
    def test_fronts_partition_and_order(self):
        points = [(1.0, 1.0), (0.5, 0.5), (2.0, 0.1), (0.1, 2.0), (0.4, 0.4)]
        fronts = fast_non_dominated_sort(points)
        assert sorted(i for front in fronts for i in front) == list(range(len(points)))
        assert set(fronts[0]) == {0, 2, 3}  # mutually non-dominated trio
        assert set(fronts[1]) == {1}
        assert set(fronts[2]) == {4}

    def test_front_zero_matches_frontier_indices(self):
        rng = np.random.default_rng(3)
        points = [tuple(rng.uniform(0, 1, size=2)) for _ in range(40)]
        fronts = fast_non_dominated_sort(points)
        assert sorted(fronts[0]) == sorted(pareto_frontier_indices(points))

    def test_empty_and_identical_points(self):
        assert fast_non_dominated_sort([]) == []
        fronts = fast_non_dominated_sort([(1.0, 1.0)] * 4)
        assert fronts == [[0, 1, 2, 3]]  # ties never dominate each other


class TestCrowdingDistance:
    def test_boundaries_are_infinite_and_interior_ordered(self):
        values = [(0.0, 1.0), (0.4, 0.65), (0.5, 0.5), (1.0, 0.0)]
        distances = crowding_distances(values)
        assert distances[0] == float("inf")
        assert distances[3] == float("inf")
        assert np.isfinite(distances[1]) and np.isfinite(distances[2])
        assert distances[1] > 0 and distances[2] > 0

    def test_tiny_fronts_all_infinite(self):
        assert crowding_distances([]) == []
        assert crowding_distances([(1.0, 2.0)]) == [float("inf")]
        assert crowding_distances([(1.0, 2.0), (2.0, 1.0)]) == [float("inf")] * 2

    def test_degenerate_objective_span_ignored(self):
        values = [(0.0, 5.0), (0.5, 5.0), (1.0, 5.0)]
        distances = crowding_distances(values)
        assert distances[0] == float("inf") and distances[2] == float("inf")
        assert np.isfinite(distances[1])


class TestHypervolume:
    def test_rectangle_area(self):
        assert hypervolume_2d([(1.0, 1.0)]) == pytest.approx(1.0)
        assert hypervolume_2d([(2.0, 3.0)], reference=(1.0, 1.0)) == pytest.approx(2.0)

    def test_staircase_union(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        # 3x1 + 2x1 + 1x1 staircase
        assert hypervolume_2d(points) == pytest.approx(6.0)

    def test_dominated_points_do_not_add_area(self):
        base = [(1.0, 3.0), (3.0, 1.0)]
        assert hypervolume_2d(base + [(0.5, 0.5)]) == pytest.approx(hypervolume_2d(base))

    def test_empty_and_subreference_points(self):
        assert hypervolume_2d([]) == 0.0
        assert hypervolume_2d([(-1.0, -2.0)]) == 0.0


class TestParetoRankingEvaluator:
    def test_rank_zero_scores_above_rank_one(self):
        evaluator = ParetoRankingEvaluator(_objectives())
        evaluations = [
            make_fake_evaluation(_genome(8), accuracy=0.9, fpga_outputs=1e5),   # front 0
            make_fake_evaluation(_genome(16), accuracy=0.5, fpga_outputs=1e6),  # front 0
            make_fake_evaluation(_genome(32), accuracy=0.4, fpga_outputs=5e5),  # dominated
        ]
        results = evaluator.score_population(evaluations)
        assert results[0].fitness > results[2].fitness
        assert results[1].fitness > results[2].fitness
        assert results[0].fitness > 0 and results[1].fitness > 0
        assert results[2].fitness <= -0.09  # strictly below every front-0 score

    def test_failed_candidates_keep_minus_infinity(self):
        from repro.core.candidate import CandidateEvaluation

        evaluator = ParetoRankingEvaluator(_objectives())
        ok = make_fake_evaluation(_genome(8), accuracy=0.7, fpga_outputs=1e6)
        failed = CandidateEvaluation(genome=_genome(16), error="boom")
        results = evaluator.score_population([ok, failed])
        assert results[1].fitness == float("-inf")
        assert np.isfinite(results[0].fitness)

    def test_engine_admits_newcomers_throughout_an_nsga2_run(
        self, small_search_space, fake_evaluator
    ):
        """Regression: newcomers must be scored population-relative.

        Rank-encoded fitness computed against the full history is not
        comparable to the population-relative scores ``Population.add``
        weighs it against; with that bug the population froze early in the
        run and late non-dominated offspring were rejected.
        """
        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=ParetoRankingEvaluator(_objectives()),
            config=EngineConfig(population_size=6, max_evaluations=80, seed=0),
            device=ARRIA10_GX1150,
            selection=get_selection("nsga2"),
        )
        result = engine.run()
        latest_birth = max(member.birth_step for member in result.population.members)
        assert latest_birth > 40  # members kept arriving in the run's second half

    def test_frontier_progress_resets_nsga2_stagnation(
        self, small_search_space, fake_evaluator
    ):
        """Regression: the capped rank score must not trip early stopping.

        The best front-0 member always scores exactly CROWDING_SPAN, so the
        scalar trace never 'improves'; an advancing frontier archive is the
        progress signal that must keep the search alive.
        """
        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=ParetoRankingEvaluator(_objectives()),
            config=EngineConfig(
                population_size=6, max_evaluations=80, seed=0, max_stagnation_steps=5
            ),
            device=ARRIA10_GX1150,
            selection=get_selection("nsga2"),
        )
        result = engine.run()
        # The frontier keeps advancing on this landscape, so the run must
        # consume far more than population + stagnation-window evaluations.
        assert result.statistics.models_generated > 6 + 5 + 10
        assert result.statistics.frontier_updates > 10


class TestNSGA2Selection:
    def _population(self):
        from repro.core.population import Individual, Population

        evaluator = ParetoRankingEvaluator(_objectives())
        evaluations = [
            make_fake_evaluation(_genome(8, rows=2), accuracy=0.9, fpga_outputs=1e5),
            make_fake_evaluation(_genome(16, rows=2), accuracy=0.5, fpga_outputs=1e6),
            make_fake_evaluation(_genome(32, rows=2), accuracy=0.4, fpga_outputs=5e5),
            make_fake_evaluation(_genome(64, rows=2), accuracy=0.3, fpga_outputs=1e4),
        ]
        results = evaluator.score_population(evaluations)
        population = Population(capacity=8)
        for evaluation, result in zip(evaluations, results):
            population.add(
                Individual(genome=evaluation.genome, evaluation=evaluation, fitness=result)
            )
        return population

    def test_prefers_first_front(self, rng):
        population = self._population()
        scheme = NSGA2Selection()
        front0_accuracies = {0.9, 0.5}
        picks = [scheme.select(population, rng).evaluation.accuracy for _ in range(200)]
        front0_share = sum(1 for a in picks if a in front0_accuracies) / len(picks)
        assert front0_share > 0.7

    def test_registry_resolution_and_empty_population(self, rng):
        from repro.core.errors import SearchError
        from repro.core.population import Population

        assert isinstance(get_selection("nsga2"), NSGA2Selection)
        with pytest.raises(SearchError):
            NSGA2Selection().select(Population(capacity=2), rng)

    def test_scalar_fallback_without_vectors(self, rng):
        from repro.core.fitness import FitnessResult
        from repro.core.population import Individual, Population

        population = Population(capacity=4)
        for neurons, fitness in ((8, 0.9), (16, 0.1)):
            evaluation = make_fake_evaluation(_genome(neurons), accuracy=fitness)
            population.add(
                Individual(
                    genome=evaluation.genome,
                    evaluation=evaluation,
                    fitness=FitnessResult(fitness=fitness),
                )
            )
        picks = [NSGA2Selection().select(population, rng).fitness_value for _ in range(100)]
        assert np.mean(picks) > 0.4  # better scalar member preferred on average


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------


class TestStrategyRegistry:
    def test_builtins_registered_with_aliases(self):
        assert set(available_strategies()) >= {"evolutionary", "nsga2", "random"}
        assert "weighted_sum" in STRATEGIES
        assert isinstance(get_strategy("weighted_sum"), EvolutionaryStrategy)
        instance = EvolutionaryStrategy()
        assert get_strategy(instance) is instance

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            get_strategy("simulated_annealing")
        with pytest.raises(ConfigurationError):
            register_strategy("nsga2", EvolutionaryStrategy)

    def test_config_strategy_field_validated_and_persisted(self, tiny_dataset, tmp_path):
        config = ECADConfig.template_for_dataset(tiny_dataset, strategy="nsga2")
        path = tmp_path / "config.json"
        config.save(path)
        assert ECADConfig.load(path).strategy == "nsga2"
        with pytest.raises(ConfigurationError):
            ECADConfig.template_for_dataset(tiny_dataset, strategy="nope")

    def test_constraints_persist_through_config_round_trip(self, tiny_dataset, tmp_path):
        optimization = OptimizationTargetConfig(constraints=("dsp_usage<=512",))
        config = ECADConfig.template_for_dataset(tiny_dataset, optimization=optimization)
        path = tmp_path / "config.json"
        config.save(path)
        loaded = ECADConfig.load(path)
        assert loaded.optimization.constraints == ("dsp_usage<=512",)
        assert len(loaded.optimization.to_constraints()) == 1
        with pytest.raises(ConfigurationError):
            OptimizationTargetConfig(constraints=("not a constraint",))


# ---------------------------------------------------------------------------
# End-to-end strategies (acceptance criteria)
# ---------------------------------------------------------------------------


class TestStrategiesEndToEnd:
    def _search(self, tiny_dataset, **config_overrides) -> CoDesignSearch:
        config = ECADConfig.template_for_dataset(
            tiny_dataset,
            population_size=6,
            max_evaluations=40,
            seed=0,
            training_epochs=2,
            **config_overrides,
        )
        return CoDesignSearch(tiny_dataset, config=config)

    def test_nsga2_produces_non_degenerate_frontier(self, tiny_dataset, fake_evaluator):
        """Acceptance: >= 3 mutually non-dominated points on the synthetic dataset."""
        result = self._search(tiny_dataset, strategy="nsga2").run(evaluator=fake_evaluator)
        archive = result.frontier_archive
        assert archive is not None
        vectors = archive.vectors()
        assert len(vectors) >= 3
        for a in vectors:
            for b in vectors:
                if a is not b:
                    assert not a.dominates(b)

    def test_streaming_archive_matches_posthoc_extraction_exactly(
        self, tiny_dataset, fake_evaluator
    ):
        """Acceptance: the final FrontierArchive state == post-hoc extraction."""
        for strategy in ("evolutionary", "nsga2"):
            result = self._search(tiny_dataset, strategy=strategy).run(evaluator=fake_evaluator)
            unique = result.history.unique_evaluations()
            posthoc = {
                unique[i].genome.cache_key()
                for i in pareto_frontier_indices(
                    [(e.accuracy, e.fpga_outputs_per_second) for e in unique if not e.failed]
                )
            }
            streamed = {e.genome.cache_key() for e in result.frontier_archive.frontier()}
            assert streamed == posthoc

    def test_weighted_sum_default_is_bit_identical_to_explicit_strategy(
        self, tiny_dataset, fake_evaluator
    ):
        """Acceptance: existing weighted-sum runs are unchanged by the redesign."""
        default = self._search(tiny_dataset).run(evaluator=fake_evaluator)
        explicit = self._search(tiny_dataset, strategy="evolutionary").run(
            evaluator=fake_evaluator
        )
        aliased = self._search(tiny_dataset).run(evaluator=fake_evaluator, strategy="weighted_sum")
        for other in (explicit, aliased):
            assert [e.genome.cache_key() for e in default.history.evaluations()] == [
                e.genome.cache_key() for e in other.history.evaluations()
            ]
            assert [r.fitness.fitness for r in default.history.records] == [
                r.fitness.fitness for r in other.history.records
            ]
            assert (
                default.best_fitness_candidate.genome.cache_key()
                == other.best_fitness_candidate.genome.cache_key()
            )

    def test_nsga2_matches_weighted_sum_hypervolume_at_equal_budget(
        self, tiny_dataset, fake_evaluator
    ):
        weighted = self._search(tiny_dataset).run(evaluator=fake_evaluator)
        nsga2 = self._search(tiny_dataset, strategy="nsga2").run(evaluator=fake_evaluator)
        points = {
            name: [(v.values[0], v.values[1]) for v in result.frontier_archive.vectors()]
            for name, result in (("weighted", weighted), ("nsga2", nsga2))
        }
        # One shared throughput scale so the two areas are commensurable.
        throughput_max = max(t for front in points.values() for _, t in front)
        hypervolumes = {
            name: hypervolume_2d([(a, t / throughput_max) for a, t in front])
            for name, front in points.items()
        }
        assert len(points["nsga2"]) >= 3
        assert hypervolumes["nsga2"] >= 0.95 * hypervolumes["weighted"]

    def test_random_strategy_routes_through_random_search(self, tiny_dataset, fake_evaluator):
        result = self._search(tiny_dataset, strategy="random").run(evaluator=fake_evaluator)
        assert result.statistics.models_generated == 40
        assert result.frontier_archive is not None
        assert result.statistics.frontier_size == len(result.frontier_archive)

    def test_random_strategy_dispatches_search_callbacks(self, tiny_dataset, fake_evaluator):
        """Regression: user callbacks must not be dropped by the random strategy."""
        seen: list[int] = []

        class Recorder(Callback):
            def on_evaluation(self, evaluation, fitness, step):
                seen.append(step)

        config = ECADConfig.template_for_dataset(
            tiny_dataset,
            population_size=6,
            max_evaluations=20,
            seed=0,
            training_epochs=2,
            strategy="random",
        )
        search = CoDesignSearch(tiny_dataset, config=config, callbacks=[Recorder()])
        result = search.run(evaluator=fake_evaluator)
        assert len(seen) == result.statistics.models_generated == 20

    def test_constraints_exclude_candidates_from_frontier(self, tiny_dataset, fake_evaluator):
        loose = self._search(tiny_dataset, strategy="nsga2").run(evaluator=fake_evaluator)
        usages = [
            e.genome.hardware.grid.dsp_blocks_used
            for e in loose.history.evaluations()
            if not e.failed
        ]
        bound = float(np.median(usages))
        constrained = self._search(
            tiny_dataset,
            strategy="nsga2",
            optimization=OptimizationTargetConfig(constraints=(f"dsp_usage<={bound}",)),
        ).run(evaluator=fake_evaluator)
        for evaluation in constrained.frontier_archive.frontier():
            assert evaluation.genome.hardware.grid.dsp_blocks_used <= bound


# ---------------------------------------------------------------------------
# FrontierArchive unit behaviour
# ---------------------------------------------------------------------------


class TestFrontierArchive:
    def test_incremental_updates_and_snapshots(self):
        archive = FrontierArchive(objectives=_objectives())
        a = make_fake_evaluation(_genome(8), accuracy=0.5, fpga_outputs=1e5)
        b = make_fake_evaluation(_genome(16), accuracy=0.9, fpga_outputs=2e5)  # dominates a
        c = make_fake_evaluation(_genome(32), accuracy=0.4, fpga_outputs=1e4)  # dominated
        assert archive.observe(a, step=0)
        assert archive.observe(b, step=1)
        assert not archive.observe(c, step=2)
        assert len(archive) == 1  # a was evicted by b
        assert archive.updates == 2
        assert [s.size for s in archive.snapshots] == [1, 1]
        assert archive.frontier()[0].accuracy == pytest.approx(0.9)

    def test_duplicate_genomes_and_failures_ignored(self):
        from repro.core.candidate import CandidateEvaluation

        archive = FrontierArchive(objectives=_objectives())
        a = make_fake_evaluation(_genome(8), accuracy=0.5, fpga_outputs=1e5)
        assert archive.observe(a)
        assert not archive.observe(a)  # same genome: cache hit re-entering history
        assert not archive.observe(CandidateEvaluation(genome=_genome(16), error="boom"))
        assert len(archive) == 1

    def test_tied_vectors_coexist(self):
        archive = FrontierArchive(objectives=_objectives())
        archive.observe(make_fake_evaluation(_genome(8), accuracy=0.5, fpga_outputs=1e5))
        archive.observe(make_fake_evaluation(_genome(16), accuracy=0.5, fpga_outputs=1e5))
        assert len(archive) == 2

    def test_rows_carry_objective_values_and_summary(self):
        archive = FrontierArchive(objectives=_objectives())
        archive.observe(make_fake_evaluation(_genome(8), accuracy=0.5, fpga_outputs=1e5))
        row = archive.rows()[0]
        assert row["accuracy"] == pytest.approx(0.5)
        assert row["fpga_throughput"] == pytest.approx(1e5)
        assert "hidden_layers" in row

    def test_random_search_streams_the_archive(self, small_search_space, fake_evaluator):
        result = RandomSearch(
            space=small_search_space,
            evaluator=fake_evaluator,
            objectives=_objectives(),
            max_evaluations=30,
            seed=0,
            device=ARRIA10_GX1150,
        ).run()
        archive = result.frontier_archive
        assert archive is not None and len(archive) > 0
        streamed = {e.genome.cache_key() for e in archive.frontier()}
        unique = result.history.unique_evaluations()
        posthoc = {
            unique[i].genome.cache_key()
            for i in pareto_frontier_indices(
                [(e.accuracy, e.fpga_outputs_per_second) for e in unique if not e.failed]
            )
        }
        assert streamed == posthoc


# ---------------------------------------------------------------------------
# Async callback dispatch (satellite: completion order, exactly once)
# ---------------------------------------------------------------------------


class _RecordingCallback(Callback):
    def __init__(self) -> None:
        self.starts = 0
        self.ends = 0
        self.evaluations: list[tuple[str, int]] = []
        self.steps: list[int] = []
        self.threads: set[int] = set()
        self.pending_step_ends = 0
        self.violations: list[str] = []

    def on_search_start(self, population) -> None:
        self.starts += 1
        self.threads.add(threading.get_ident())

    def on_evaluation(self, evaluation, fitness, step) -> None:
        self.threads.add(threading.get_ident())
        if self.pending_step_ends > 0 and self.starts > 0:
            self.violations.append("on_evaluation before previous on_step_end")
        self.evaluations.append((evaluation.genome.cache_key(), step))
        if self.starts > 0:  # steady-state phase: expect a matching step end
            self.pending_step_ends += 1

    def on_step_end(self, population, step) -> None:
        self.threads.add(threading.get_ident())
        self.steps.append(step)
        self.pending_step_ends = max(0, self.pending_step_ends - 1)

    def on_search_end(self, population) -> None:
        self.ends += 1
        self.threads.add(threading.get_ident())


class TestAsyncCallbackDispatch:
    def test_engine_async_path_fires_hooks_exactly_once_in_completion_order(
        self, small_search_space, fake_evaluator
    ):
        recorder = _RecordingCallback()
        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=FitnessEvaluator(_objectives()),
            config=EngineConfig(
                population_size=6, max_evaluations=40, seed=0, eval_parallelism=4
            ),
            device=ARRIA10_GX1150,
            callbacks=[recorder],
        )
        result = engine.run()
        stats = result.statistics
        assert recorder.starts == 1 and recorder.ends == 1
        # exactly once per generated candidate
        assert len(recorder.evaluations) == stats.models_generated == 40
        # one step end per steady-state insertion, strictly increasing
        assert len(recorder.steps) == stats.models_generated - 6
        assert recorder.steps == sorted(recorder.steps)
        assert len(set(recorder.steps)) == len(recorder.steps)
        # interleaving: every steady-state evaluation saw its step end
        assert not recorder.violations
        assert recorder.pending_step_ends == 0
        # all hooks fired from the coordinating thread, not worker threads
        assert len(recorder.threads) == 1

    def test_real_master_threads_backend_dispatch(self, tiny_dataset):
        """Regression: callback dispatch through Master under --backend threads."""
        recorder = _RecordingCallback()
        config = ECADConfig.template_for_dataset(
            tiny_dataset,
            population_size=4,
            max_evaluations=8,
            seed=0,
            training_epochs=2,
            backend="threads",
            eval_parallelism=4,
        )
        search = CoDesignSearch(tiny_dataset, config=config, callbacks=[recorder])
        result = search.run()
        stats = result.statistics
        assert recorder.starts == 1 and recorder.ends == 1
        assert len(recorder.evaluations) == stats.models_generated == 8
        keys = [key for key, _ in recorder.evaluations]
        # each candidate exactly once: history and callback agree one-to-one
        assert keys == [e.genome.cache_key() for e in result.history.evaluations()]
        assert len(recorder.steps) == 4
        assert recorder.steps == sorted(recorder.steps)
        assert not recorder.violations
        assert len(recorder.threads) == 1


# ---------------------------------------------------------------------------
# core/pareto edge cases (satellite)
# ---------------------------------------------------------------------------


class TestParetoEdgeCases:
    def test_knee_point_single_point(self):
        only = ParetoPoint(values=(1.0, 2.0), payload="solo")
        assert knee_point([only]).payload == "solo"

    def test_knee_point_duplicate_and_tied_points(self):
        tied = [
            ParetoPoint(values=(0.5, 0.5), payload="a"),
            ParetoPoint(values=(0.5, 0.5), payload="b"),
        ]
        assert knee_point(tied).payload in {"a", "b"}

    def test_knee_point_empty_raises(self):
        with pytest.raises(ValueError):
            knee_point([])

    def test_top_tradeoff_points_edge_cases(self):
        assert top_tradeoff_points([], count=3) == []
        solo = [ParetoPoint(values=(0.9, 1e5), payload="solo")]
        assert [p.payload for p in top_tradeoff_points(solo, count=3)] == ["solo"]
        duplicates = [
            ParetoPoint(values=(0.9, 1e5), payload="a"),
            ParetoPoint(values=(0.9, 1e5), payload="b"),
        ]
        rows = top_tradeoff_points(duplicates, count=2)
        assert {p.payload for p in rows} == {"a", "b"}

    def test_all_dominated_set_still_summarizable(self):
        # Callers may pass a non-frontier set; helpers must not crash.
        chain = [
            ParetoPoint(values=(0.1, 0.1), payload="worst"),
            ParetoPoint(values=(0.5, 0.5), payload="middle"),
            ParetoPoint(values=(0.9, 0.9), payload="best"),
        ]
        assert knee_point(chain).payload == "best"
        rows = top_tradeoff_points(chain, count=2)
        assert rows[0].payload == "best"

    def test_frontier_indices_empty_single_and_duplicates(self):
        assert pareto_frontier_indices([]) == []
        assert pareto_frontier_indices([(1.0, 2.0)]) == [0]
        assert pareto_frontier_indices([(1.0, 1.0), (1.0, 1.0)]) == [0, 1]

    def test_evaluation_frontier_rejects_unknown_device(self):
        with pytest.raises(ValueError):
            evaluation_frontier([], device="tpu")
        assert evaluation_frontier([], device="fpga") == []


# ---------------------------------------------------------------------------
# Property test: all frontier-extraction paths agree (satellite)
# ---------------------------------------------------------------------------


_metrics_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    ),
    min_size=0,
    max_size=16,
)


class TestFrontierPathsAgree:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(metrics=_metrics_strategy)
    def test_search_analysis_and_pareto_paths_agree(self, metrics):
        evaluations = [
            make_fake_evaluation(_genome(8 + 8 * i), accuracy=accuracy, fpga_outputs=fpga)
            for i, (accuracy, fpga) in enumerate(metrics)
        ]
        via_search = _extract_frontier(evaluations)
        via_analysis = accuracy_throughput_frontier(evaluations, device="fpga")
        direct = [
            evaluations[i]
            for i in pareto_frontier_indices(
                [(e.accuracy, e.fpga_outputs_per_second) for e in evaluations]
            )
        ]
        assert [id(e) for e in via_search] == [id(e) for e in via_analysis]
        assert {id(e) for e in via_search} == {id(e) for e in direct}
        archive = FrontierArchive(objectives=_objectives())
        for evaluation in evaluations:
            archive.observe(evaluation)
        # archive dedupes by genome; compare on unique genomes
        unique: dict[str, object] = {}
        for e in evaluations:
            unique.setdefault(e.genome.cache_key(), e)
        unique_frontier = {
            list(unique)[i]
            for i in pareto_frontier_indices(
                [(e.accuracy, e.fpga_outputs_per_second) for e in unique.values()]
            )
        }
        assert {e.genome.cache_key() for e in archive.frontier()} == unique_frontier
