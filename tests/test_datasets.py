"""Unit tests for the dataset substrate (base, synthetic, registry, CSV I/O)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, DatasetInfo
from repro.datasets.csv_io import load_dataset_csv, save_dataset_csv
from repro.datasets.registry import available_datasets, dataset_entry, load_dataset
from repro.datasets.synthetic import (
    PAPER_DATASET_SPECS,
    SyntheticSpec,
    make_classification,
    make_credit_g_like,
    make_mnist_like,
)


class TestDataset:
    def test_basic_properties(self, tiny_dataset):
        assert tiny_dataset.num_samples == 160
        assert tiny_dataset.num_features == 12
        assert tiny_dataset.num_classes == 2
        assert not tiny_dataset.has_test_split
        assert tiny_dataset.num_test_samples == 0

    def test_info_round_trip(self, tiny_presplit_dataset):
        info = tiny_presplit_dataset.info()
        assert isinstance(info, DatasetInfo)
        assert info.num_features == tiny_presplit_dataset.num_features
        assert info.has_test_split

    def test_class_distribution_sums_to_samples(self, tiny_dataset):
        assert tiny_dataset.class_distribution().sum() == tiny_dataset.num_samples

    def test_subsample_is_stratified_and_bounded(self, tiny_dataset):
        sub = tiny_dataset.subsample(40, seed=0)
        assert sub.num_samples <= 44  # rounding tolerance per class
        assert set(np.unique(sub.labels)) == {0, 1}
        assert sub.num_features == tiny_dataset.num_features

    def test_subsample_noop_when_large_enough(self, tiny_dataset):
        assert tiny_dataset.subsample(10_000) is tiny_dataset

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Dataset(name="bad", features=np.ones((3, 2)), labels=np.zeros(2))
        with pytest.raises(ValueError):
            Dataset(name="bad", features=np.ones(3), labels=np.zeros(3))
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                features=np.ones((3, 2)),
                labels=np.zeros(3),
                test_features=np.ones((2, 5)),
                test_labels=np.zeros(2),
            )
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                features=np.ones((3, 2)),
                labels=np.zeros(3),
                test_features=np.ones((2, 2)),
                test_labels=None,
            )

    def test_dataset_info_validation(self):
        with pytest.raises(ValueError):
            DatasetInfo(name="x", num_features=0, num_classes=2, num_samples=10)
        with pytest.raises(ValueError):
            DatasetInfo(name="x", num_features=3, num_classes=1, num_samples=10)


class TestSyntheticGenerators:
    def test_generator_is_deterministic(self):
        a = make_credit_g_like(seed=3, scale=0.1)
        b = make_credit_g_like(seed=3, scale=0.1)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_credit_g_like(seed=1, scale=0.1)
        b = make_credit_g_like(seed=2, scale=0.1)
        assert not np.array_equal(a.features, b.features)

    def test_scale_controls_sample_count(self):
        full = PAPER_DATASET_SPECS["credit_g_like"].num_samples
        assert make_credit_g_like(seed=0, scale=0.25).num_samples == pytest.approx(full * 0.25, abs=2)

    def test_paper_dataset_footprints(self):
        expectations = {
            "mnist_like": (784, 10, True),
            "fashion_mnist_like": (784, 10, True),
            "credit_g_like": (20, 2, False),
            "har_like": (561, 6, False),
            "phishing_like": (30, 2, False),
            "bioresponse_like": (1776, 2, False),
        }
        for name, (features, classes, presplit) in expectations.items():
            spec = PAPER_DATASET_SPECS[name]
            assert spec.num_features == features
            assert spec.num_classes == classes
            assert (spec.num_test_samples > 0) == presplit

    def test_mnist_like_has_test_split(self):
        dataset = make_mnist_like(seed=0, scale=0.01)
        assert dataset.has_test_split
        assert dataset.num_classes == 10
        assert dataset.num_features == 784

    def test_all_classes_present(self):
        dataset = make_classification(
            SyntheticSpec(name="t", num_features=5, num_classes=4, num_samples=400), seed=0
        )
        assert set(np.unique(dataset.labels)) == {0, 1, 2, 3}

    def test_harder_spec_gives_lower_achievable_separation(self):
        """Label noise should reduce the best achievable nearest-centroid accuracy."""
        easy_spec = SyntheticSpec(
            name="easy", num_features=10, num_classes=2, num_samples=600,
            class_separation=3.0, prototypes_per_class=1, label_noise=0.0,
        )
        hard_spec = SyntheticSpec(
            name="hard", num_features=10, num_classes=2, num_samples=600,
            class_separation=3.0, prototypes_per_class=1, label_noise=0.3,
        )
        easy = make_classification(easy_spec, seed=0)
        hard = make_classification(hard_spec, seed=0)

        def centroid_accuracy(ds):
            centroids = np.stack([ds.features[ds.labels == c].mean(axis=0) for c in range(2)])
            distances = np.linalg.norm(ds.features[:, None, :] - centroids[None, :, :], axis=2)
            return float(np.mean(np.argmin(distances, axis=1) == ds.labels))

        assert centroid_accuracy(easy) > centroid_accuracy(hard) + 0.1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", num_features=0, num_classes=2, num_samples=10)
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", num_features=4, num_classes=2, num_samples=10, label_noise=0.6)
        with pytest.raises(ValueError):
            make_classification(PAPER_DATASET_SPECS["credit_g_like"], scale=0.0)


class TestRegistry:
    def test_all_six_paper_datasets_registered(self):
        names = available_datasets()
        assert set(names) == {
            "mnist_like",
            "fashion_mnist_like",
            "credit_g_like",
            "har_like",
            "phishing_like",
            "bioresponse_like",
        }

    def test_aliases_resolve(self):
        assert dataset_entry("credit-g").name == "credit_g_like"
        assert dataset_entry("MNIST").name == "mnist_like"
        assert dataset_entry("fashion-mnist").name == "fashion_mnist_like"

    def test_protocols_match_paper_tables(self):
        assert dataset_entry("mnist").evaluation_protocol == "1-fold"
        assert dataset_entry("fashion_mnist").evaluation_protocol == "1-fold"
        for name in ("credit-g", "har", "phishing", "bioresponse"):
            assert dataset_entry(name).evaluation_protocol == "10-fold"

    def test_load_dataset_by_alias(self):
        dataset = load_dataset("har", seed=0, scale=0.02)
        assert dataset.num_features == 561
        assert dataset.num_classes == 6

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")


class TestCsvIO:
    def test_round_trip_without_test_split(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        save_dataset_csv(tiny_dataset, path)
        loaded = load_dataset_csv(path, name="tiny")
        np.testing.assert_allclose(loaded.features, tiny_dataset.features, rtol=1e-6)
        np.testing.assert_array_equal(loaded.labels, tiny_dataset.labels)

    def test_round_trip_with_test_split(self, tiny_presplit_dataset, tmp_path):
        train_path = tmp_path / "train.csv"
        test_path = tmp_path / "test.csv"
        save_dataset_csv(tiny_presplit_dataset, train_path, test_path)
        loaded = load_dataset_csv(train_path, test_path)
        assert loaded.has_test_split
        assert loaded.num_test_samples == tiny_presplit_dataset.num_test_samples

    def test_saving_presplit_without_test_path_raises(self, tiny_presplit_dataset, tmp_path):
        with pytest.raises(ValueError):
            save_dataset_csv(tiny_presplit_dataset, tmp_path / "only_train.csv")

    def test_labels_are_remapped_to_dense_range(self, tmp_path):
        path = tmp_path / "sparse_labels.csv"
        path.write_text("f0,f1,label\n0.1,0.2,5\n0.3,0.4,9\n0.5,0.6,5\n")
        dataset = load_dataset_csv(path)
        assert set(np.unique(dataset.labels)) == {0, 1}

    def test_label_column_by_name_and_index(self, tmp_path):
        path = tmp_path / "custom.csv"
        path.write_text("target,f0,f1\n1,0.1,0.2\n0,0.3,0.4\n")
        by_name = load_dataset_csv(path, label_column="target")
        by_index = load_dataset_csv(path, label_column=0)
        assert by_name.num_features == 2
        np.testing.assert_array_equal(by_name.labels, by_index.labels)

    def test_missing_file_and_bad_content_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_csv(tmp_path / "nope.csv")
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_dataset_csv(empty)
        header_only = tmp_path / "header.csv"
        header_only.write_text("f0,label\n")
        with pytest.raises(ValueError):
            load_dataset_csv(header_only)
        ragged = tmp_path / "ragged.csv"
        ragged.write_text("f0,f1,label\n0.1,0.2,1\n0.3,1\n")
        with pytest.raises(ValueError):
            load_dataset_csv(ragged)
        non_numeric = tmp_path / "nan.csv"
        non_numeric.write_text("f0,label\nabc,1\n")
        with pytest.raises(ValueError):
            load_dataset_csv(non_numeric)

    def test_unknown_label_column_raises(self, tmp_path):
        path = tmp_path / "bad_column.csv"
        path.write_text("f0,label\n0.1,1\n0.2,0\n")
        with pytest.raises(ValueError, match="label column"):
            load_dataset_csv(path, label_column="missing")
        with pytest.raises(ValueError, match="out of range"):
            load_dataset_csv(path, label_column=7)
