"""Batched population evaluation: workers, master and engine plumbing.

The batched paths exist purely for throughput — they must produce the *same*
numbers as per-candidate dispatch (same seeds, same cache keys, same error
strings).  Accuracy comparisons here are exact ``==``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidate import CandidateEvaluation
from repro.core.engine import EngineConfig, EvolutionaryEngine, RunStatistics
from repro.core.errors import SearchError
from repro.core.fitness import FitnessEvaluator, FitnessObjective
from repro.core.genome import CoDesignGenome, HardwareGenome, MLPGenome
from repro.datasets.shared import clear_attached_cache
from repro.hardware.device import ARRIA10_GX1150, TITAN_X
from repro.hardware.systolic import GridConfig
from repro.workers.base import EvaluationRequest, Worker, WorkerReport
from repro.workers.hardware_db import HardwareDatabaseWorker
from repro.workers.master import Master
from repro.workers.physical import PhysicalWorker
from repro.workers.simulation import SimulationWorker


def _genomes(small_grid) -> list[CoDesignGenome]:
    """A small population with repeated and distinct topologies."""
    topologies = [
        ((16, 8), ("relu", "tanh")),
        ((16, 8), ("relu", "tanh")),  # same topology, same fused group
        ((32,), ("relu",)),
        ((8, 8), ("tanh", "tanh")),
        ((16, 8), ("relu", "tanh")),
    ]
    return [
        CoDesignGenome(
            mlp=MLPGenome(hidden_layers=layers, activations=acts),
            hardware=HardwareGenome(grid=small_grid, batch_size=256 * (1 + i % 2)),
            gpu_batch_size=128,
        )
        for i, (layers, acts) in enumerate(topologies)
    ]


def _requests(genomes, dataset, training_config, protocol="1-fold", num_folds=10):
    return [
        EvaluationRequest(
            genome=genome,
            dataset=dataset,
            evaluation_protocol=protocol,
            num_folds=num_folds,
            training_config=training_config,
            seed=100 + index,
        )
        for index, genome in enumerate(genomes)
    ]


def _assert_reports_identical(batched: WorkerReport, scalar: WorkerReport) -> None:
    assert batched.worker_name == scalar.worker_name
    assert batched.accuracy == scalar.accuracy
    assert batched.accuracy_std == scalar.accuracy_std
    assert batched.parameter_count == scalar.parameter_count
    assert batched.error == scalar.error
    assert batched.fpga_metrics == scalar.fpga_metrics
    assert batched.gpu_metrics == scalar.gpu_metrics
    assert batched.extras.get("fold_accuracies") == scalar.extras.get("fold_accuracies")


class TestWorkerBatchDefault:
    def test_base_default_loops_evaluate(self, sample_genome):
        class CountingWorker(Worker):
            name = "counting"

            def __init__(self):
                self.seen = []

            def evaluate(self, request):
                self.seen.append(request.seed)
                return WorkerReport(worker_name=self.name)

        worker = CountingWorker()
        requests = [
            EvaluationRequest(genome=sample_genome, seed=seed) for seed in (1, 2, 3)
        ]
        reports = worker.evaluate_batch(requests)
        assert len(reports) == 3
        assert worker.seen == [1, 2, 3]


class TestSimulationWorkerBatch:
    @pytest.mark.parametrize("dataset_fixture", ["tiny_dataset", "tiny_presplit_dataset"])
    def test_single_fold_batch_is_bit_identical(
        self, request, dataset_fixture, small_grid, fast_training_config
    ):
        dataset = request.getfixturevalue(dataset_fixture)
        worker = SimulationWorker(gpu=TITAN_X)
        requests = _requests(_genomes(small_grid), dataset, fast_training_config)
        batched = worker.evaluate_batch(requests)
        for batched_report, req in zip(batched, requests):
            _assert_reports_identical(batched_report, worker.evaluate(req))

    def test_kfold_batch_is_bit_identical(self, tiny_dataset, small_grid, fast_training_config):
        worker = SimulationWorker(gpu=None, measure_gpu=False)
        requests = _requests(
            _genomes(small_grid), tiny_dataset, fast_training_config,
            protocol="10-fold", num_folds=3,
        )
        batched = worker.evaluate_batch(requests)
        for batched_report, req in zip(batched, requests):
            scalar = worker.evaluate(req)
            _assert_reports_identical(batched_report, scalar)
            assert len(batched_report.extras["fold_accuracies"]) == 3

    def test_missing_dataset_error_matches_scalar(self, small_grid, fast_training_config):
        worker = SimulationWorker(gpu=None, measure_gpu=False)
        requests = _requests(_genomes(small_grid)[:2], None, fast_training_config)
        batched = worker.evaluate_batch(requests)
        for batched_report, req in zip(batched, requests):
            scalar = worker.evaluate(req)
            assert batched_report.failed and scalar.failed
            assert batched_report.error == scalar.error

    def test_same_topology_requests_share_one_fused_group(
        self, tiny_dataset, small_grid, fast_training_config
    ):
        worker = SimulationWorker(gpu=None, measure_gpu=False)
        calls = []
        original = worker._evaluate_group

        def spying(group):
            calls.append(len(group))
            return original(group)

        worker._evaluate_group = spying
        worker.evaluate_batch(_requests(_genomes(small_grid), tiny_dataset, fast_training_config))
        # 5 requests over 3 distinct topologies -> 3 groups, largest of size 3.
        assert sorted(calls) == [1, 1, 3]


class TestHardwareDatabaseWorkerBatch:
    def test_batch_is_bit_identical(self, tiny_dataset, small_grid, fast_training_config):
        worker = HardwareDatabaseWorker(device=ARRIA10_GX1150)
        requests = _requests(_genomes(small_grid), tiny_dataset, fast_training_config)
        batched = worker.evaluate_batch(requests)
        for batched_report, req in zip(batched, requests):
            _assert_reports_identical(batched_report, worker.evaluate(req))

    def test_infeasible_and_missing_dims_fall_back_to_scalar_errors(
        self, tiny_dataset, small_grid, fast_training_config
    ):
        worker = HardwareDatabaseWorker(device=ARRIA10_GX1150)
        feasible = _genomes(small_grid)[0]
        infeasible = CoDesignGenome(
            mlp=MLPGenome(hidden_layers=(16,), activations=("relu",)),
            hardware=HardwareGenome(
                grid=GridConfig(rows=32, columns=32, vector_width=16), batch_size=512
            ),
        )
        requests = [
            EvaluationRequest(genome=feasible, dataset=tiny_dataset, seed=1),
            EvaluationRequest(genome=infeasible, dataset=tiny_dataset, seed=2),
            EvaluationRequest(genome=feasible, dataset=None, seed=3),  # missing dims
        ]
        batched = worker.evaluate_batch(requests)
        for batched_report, req in zip(batched, requests):
            scalar = worker.evaluate(req)
            assert batched_report.error == scalar.error
            assert batched_report.fpga_metrics == scalar.fpga_metrics
        assert not batched[0].failed
        assert batched[1].failed
        assert batched[2].failed


class TestMasterBatch:
    def _master(self, dataset, training_config, backend=None) -> Master:
        return Master(
            workers=[
                SimulationWorker(gpu=TITAN_X),
                HardwareDatabaseWorker(device=ARRIA10_GX1150),
                PhysicalWorker(device=ARRIA10_GX1150),
            ],
            dataset=dataset,
            evaluation_protocol="1-fold",
            training_config=training_config,
            backend=backend,
            seed=0,
        )

    def _assert_evaluations_identical(self, batched, scalar):
        assert batched.genome.cache_key() == scalar.genome.cache_key()
        assert batched.accuracy == scalar.accuracy
        assert batched.accuracy_std == scalar.accuracy_std
        assert batched.parameter_count == scalar.parameter_count
        assert batched.fpga_metrics == scalar.fpga_metrics
        assert batched.gpu_metrics == scalar.gpu_metrics
        assert batched.synthesis == scalar.synthesis
        assert batched.error == scalar.error

    def test_evaluate_batch_matches_per_candidate(self, tiny_dataset, fast_training_config, small_grid):
        master = self._master(tiny_dataset, fast_training_config)
        genomes = _genomes(small_grid)
        batched = master.evaluate_batch(genomes)
        assert len(batched) == len(genomes)
        for genome, evaluation in zip(genomes, batched):
            self._assert_evaluations_identical(evaluation, master.evaluate(genome))
            assert evaluation.evaluation_seconds > 0
        master.shutdown()

    def test_empty_batch(self, tiny_dataset, fast_training_config):
        master = self._master(tiny_dataset, fast_training_config)
        assert master.evaluate_batch([]) == []
        master.shutdown()

    def test_submit_batch_and_drain_flatten(self, tiny_dataset, fast_training_config, small_grid):
        master = self._master(tiny_dataset, fast_training_config, backend="threads")
        genomes = _genomes(small_grid)
        master.submit_batch(genomes[:3])
        master.submit(genomes[3])
        drained = master.drain()
        assert len(drained) == 4
        assert all(isinstance(e, CandidateEvaluation) for e in drained)
        assert {e.genome.cache_key() for e in drained} == {g.cache_key() for g in genomes[:4]}
        assert master.drain() == []
        master.shutdown()

    def test_processes_backend_ships_shared_dataset(
        self, tiny_dataset, fast_training_config, small_grid
    ):
        serial = self._master(tiny_dataset, fast_training_config, backend="serial")
        procs = self._master(tiny_dataset, fast_training_config, backend="processes")
        try:
            genomes = _genomes(small_grid)[:3]
            request = procs.build_request(genomes[0])
            assert request.dataset is None
            assert request.shared_dataset is not None
            materialized = request.materialize()
            assert np.array_equal(materialized.dataset.features, tiny_dataset.features)

            batched = procs.evaluate_batch(genomes)
            for evaluation, genome in zip(batched, genomes):
                self._assert_evaluations_identical(evaluation, serial.evaluate(genome))
        finally:
            segments = list(procs._shared_dataset.segment_names) if procs._shared_dataset else []
            procs.shutdown()
            serial.shutdown()
            clear_attached_cache()
        assert procs._shared_dataset is None
        import os

        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_serial_backends_do_not_export_shared_memory(self, tiny_dataset, fast_training_config, small_grid):
        master = self._master(tiny_dataset, fast_training_config, backend="serial")
        request = master.build_request(_genomes(small_grid)[0])
        assert request.dataset is tiny_dataset
        assert request.shared_dataset is None
        assert master._shared_dataset is None
        master.shutdown()


class _BatchRecordingEvaluator:
    """Evaluator double that records batch sizes (engine-side contract)."""

    def __init__(self, fn):
        self.fn = fn
        self.batch_sizes: list[int] = []
        self.single_calls = 0

    def __call__(self, genome):
        self.single_calls += 1
        return self.fn(genome)

    def evaluate_batch(self, genomes):
        self.batch_sizes.append(len(genomes))
        return [self.fn(genome) for genome in genomes]


class TestEngineBatching:
    def _engine(self, space, evaluator, **overrides) -> EvolutionaryEngine:
        config = EngineConfig(
            population_size=overrides.pop("population_size", 6),
            max_evaluations=overrides.pop("max_evaluations", 24),
            seed=overrides.pop("seed", 0),
            **overrides,
        )
        return EvolutionaryEngine(
            space=space,
            evaluator=evaluator,
            fitness=FitnessEvaluator(
                [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]
            ),
            config=config,
            device=ARRIA10_GX1150,
        )

    def test_eval_batch_size_validation(self):
        with pytest.raises(SearchError):
            EngineConfig(eval_batch_size=0)
        with pytest.raises(SearchError):
            EngineConfig(eval_batch_size=-4)
        EngineConfig(eval_batch_size=8)

    def test_batched_run_uses_evaluate_batch_and_accounts_correctly(
        self, small_search_space, fake_evaluator
    ):
        evaluator = _BatchRecordingEvaluator(fake_evaluator)
        engine = self._engine(
            small_search_space, evaluator, eval_parallelism=2, eval_batch_size=4
        )
        result = engine.run()
        stats = result.statistics
        assert len(result.population) == 6
        assert stats.models_generated == 24
        assert stats.models_evaluated + stats.cache_hits == 24
        assert stats.models_evaluated == sum(evaluator.batch_sizes) + evaluator.single_calls
        assert max(evaluator.batch_sizes, default=0) > 1
        assert len(result.history) == 24
        assert stats.peak_in_flight >= 4

    def test_batch_size_one_matches_per_candidate_async_run(
        self, small_search_space, fake_evaluator
    ):
        base = self._engine(small_search_space, fake_evaluator, eval_parallelism=1)
        batched = self._engine(
            small_search_space, fake_evaluator, eval_parallelism=1, eval_batch_size=1
        )
        assert base.run().statistics.models_generated == batched.run().statistics.models_generated

    def test_batch_evaluator_errors_become_error_evaluations(self, small_search_space):
        def explode(genome):
            raise RuntimeError("synthetic batch failure")

        evaluator = _BatchRecordingEvaluator(explode)
        engine = self._engine(
            small_search_space,
            evaluator,
            eval_parallelism=2,
            eval_batch_size=3,
            max_evaluations=12,
        )
        result = engine.run()
        # A failing evaluator degrades every candidate to an error
        # evaluation, exactly like the per-candidate path — no crash.
        assert all(
            member.evaluation.failed
            and "synthetic batch failure" in member.evaluation.error
            for member in result.population.members
        )

    def test_duplicate_genomes_hit_cache_within_batch_path(
        self, small_search_space, fake_evaluator, rng
    ):
        evaluator = _BatchRecordingEvaluator(fake_evaluator)
        engine = self._engine(small_search_space, evaluator, eval_batch_size=2)
        genome = small_search_space.random_genome(rng, device=ARRIA10_GX1150)
        first = engine._evaluate_concurrent_batch([genome])
        second = engine._evaluate_concurrent_batch([genome])
        assert not first[0].from_cache
        assert second[0].from_cache
        assert first[0].accuracy == second[0].accuracy
        assert engine.statistics.cache_hits == 1
        assert engine.statistics.models_evaluated == 1


class TestRunStatisticsGuards:
    def test_zero_wall_clock_is_not_infinite(self):
        stats = RunStatistics(models_evaluated=10, wall_clock_seconds=0.0)
        assert stats.evaluations_per_second == 0.0
        stats.wall_clock_seconds = 1e-12
        assert stats.evaluations_per_second == 0.0

    def test_no_fresh_evaluations_is_zero_throughput(self):
        stats = RunStatistics(models_evaluated=0, cache_hits=50, wall_clock_seconds=2.0)
        assert stats.evaluations_per_second == 0.0
        assert stats.average_evaluation_seconds == 0.0

    def test_normal_case(self):
        stats = RunStatistics(
            models_evaluated=20, wall_clock_seconds=4.0, total_evaluation_seconds=8.0
        )
        assert stats.evaluations_per_second == 5.0
        assert stats.average_evaluation_seconds == 0.4
        assert np.isfinite(stats.to_dict()["evaluations_per_second"])
