"""Tests for the persistent cross-run evaluation store (``repro.store``).

Covers the serialization round-trip, the SQLite store itself (including the
corruption/migration/readonly failure modes), the read-through/write-behind
cache tier, warm-started searches, and concurrent writes from two processes.
"""

from __future__ import annotations

import json
import multiprocessing
import sqlite3

import numpy as np
import pytest

from repro.core.cache import EvaluationCache
from repro.core.candidate import CandidateEvaluation
from repro.core.config import ECADConfig, StoreConfig
from repro.core.engine import EngineConfig, EvolutionaryEngine
from repro.core.errors import ConfigurationError, StoreError
from repro.core.fitness import FitnessEvaluator, FitnessObjective
from repro.core.genome import CoDesignSearchSpace
from repro.core.search import CoDesignSearch
from repro.datasets.registry import load_dataset
from repro.hardware.synthesis import SynthesisReport
from repro.store import (
    SCHEMA_VERSION,
    EvaluationStore,
    StoreBackedCache,
    dataset_fingerprint,
    problem_digest,
)
from repro.store.serialize import evaluation_from_payload, evaluation_to_payload

from repro.hardware.results import HardwareMetrics

PROBLEM = "problem-a"
OTHER_PROBLEM = "problem-b"


def make_fake_evaluation(genome, accuracy, fpga_outputs=0.0, gpu_outputs=0.0):
    """A CandidateEvaluation with synthetic hardware metrics.

    Mirrors the helper in ``tests/conftest.py``, duplicated here because the
    root pytest run also loads ``benchmarks/conftest.py`` under the module
    name ``conftest`` — importing from it by name is ambiguous.
    """

    def metrics(device, outputs):
        if outputs <= 0:
            return None
        return HardwareMetrics(
            device_name=device,
            batch_size=1024,
            potential_gflops=100.0,
            effective_gflops=min(50.0, outputs / 1e5),
            total_time_seconds=1024 / outputs,
            outputs_per_second=outputs,
            latency_seconds=1e-4,
            efficiency=min(1.0, outputs / 1e7),
        )

    return CandidateEvaluation(
        genome=genome,
        accuracy=accuracy,
        parameter_count=genome.mlp.total_hidden_neurons * 10,
        fpga_metrics=metrics("fpga", fpga_outputs),
        gpu_metrics=metrics("gpu", gpu_outputs),
        evaluation_seconds=0.01,
    )


def _evaluations(space: CoDesignSearchSpace, count: int, seed: int = 0):
    """Distinct fake evaluations with descending accuracy."""
    rng = np.random.default_rng(seed)
    evaluations, keys = [], set()
    while len(evaluations) < count:
        genome = space.random_genome(rng)
        if genome.cache_key() in keys:
            continue
        keys.add(genome.cache_key())
        accuracy = 0.95 - 0.01 * len(evaluations)
        evaluations.append(make_fake_evaluation(genome, accuracy, fpga_outputs=1e6))
    return evaluations


class TestSerialization:
    def test_full_round_trip_is_exact(self, sample_genome):
        original = make_fake_evaluation(sample_genome, 0.87654321, fpga_outputs=1.23e6,
                                        gpu_outputs=4.56e6)
        original = CandidateEvaluation(
            genome=original.genome,
            accuracy=original.accuracy,
            accuracy_std=0.0123,
            parameter_count=original.parameter_count,
            fpga_metrics=original.fpga_metrics,
            gpu_metrics=original.gpu_metrics,
            synthesis=SynthesisReport(
                device_name="arria10", alm_used=1000, alm_utilization=0.1,
                m20k_used=50, m20k_utilization=0.05, dsp_used=64,
                dsp_utilization=0.04, fmax_mhz=250.0, power_watts=30.0,
            ),
            train_seconds=1.5,
            evaluation_seconds=2.25,
            extras={"simulation": {"folds": 3}},
        )
        back = evaluation_from_payload(json.loads(json.dumps(evaluation_to_payload(original))))
        assert back.genome == original.genome
        assert back.accuracy == original.accuracy
        assert back.accuracy_std == original.accuracy_std
        assert back.parameter_count == original.parameter_count
        assert back.fpga_metrics == original.fpga_metrics
        assert back.gpu_metrics == original.gpu_metrics
        assert back.synthesis == original.synthesis
        assert back.train_seconds == original.train_seconds
        assert back.evaluation_seconds == original.evaluation_seconds
        assert back.extras == original.extras
        assert not back.from_cache

    def test_metrics_extras_survive(self, sample_genome):
        evaluation = make_fake_evaluation(sample_genome, 0.8, fpga_outputs=1e6)
        metrics = evaluation.fpga_metrics
        object.__setattr__(metrics, "extras", {"per_layer": [0.1, 0.2]})
        back = evaluation_from_payload(evaluation_to_payload(evaluation))
        assert back.fpga_metrics.extras == {"per_layer": [0.1, 0.2]}

    def test_malformed_payload_raises_store_error(self):
        with pytest.raises(StoreError):
            evaluation_from_payload({"accuracy": 0.5})


class TestEvaluationStore:
    def test_put_get_round_trip(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        evaluation = _evaluations(small_search_space, 1)[0]
        store.put(PROBLEM, evaluation)
        back = store.get(PROBLEM, evaluation.genome.cache_key())
        assert back is not None
        assert back.genome == evaluation.genome
        assert back.accuracy == evaluation.accuracy
        assert store.get(PROBLEM, "unknown-key") is None
        assert store.get(OTHER_PROBLEM, evaluation.genome.cache_key()) is None
        store.close()

    def test_failed_evaluations_are_not_stored(self, tmp_path, sample_genome):
        store = EvaluationStore(tmp_path / "store.sqlite")
        failed = CandidateEvaluation(genome=sample_genome, error="worker exploded")
        assert store.put_many(PROBLEM, [failed]) == 0
        assert store.count() == 0
        store.close()

    def test_best_orders_by_accuracy_and_respects_limit(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        evaluations = _evaluations(small_search_space, 6)
        store.put_many(PROBLEM, evaluations)
        best = store.best(PROBLEM, limit=3)
        assert [e.accuracy for e in best] == sorted(
            (e.accuracy for e in evaluations), reverse=True
        )[:3]
        assert store.best(OTHER_PROBLEM, limit=3) == []
        assert store.best(PROBLEM, limit=0) == []
        store.close()

    def test_replacing_a_row_keeps_counts_stable(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        evaluation = _evaluations(small_search_space, 1)[0]
        store.put(PROBLEM, evaluation)
        store.put(PROBLEM, evaluation)
        assert store.count(PROBLEM) == 1
        store.close()

    def test_prune_keep_best_per_problem(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        store.put_many(PROBLEM, _evaluations(small_search_space, 5, seed=0))
        store.put_many(OTHER_PROBLEM, _evaluations(small_search_space, 4, seed=99))
        removed = store.prune(keep_best=2)
        assert removed == 5
        assert store.count(PROBLEM) == 2
        assert store.count(OTHER_PROBLEM) == 2
        # The survivors are the best rows.
        assert [e.accuracy for e in store.best(PROBLEM, 10)] == [0.95, 0.94]
        with pytest.raises(StoreError):
            store.prune()
        store.close()

    def test_stats_problems_and_export(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        store.put_many(PROBLEM, _evaluations(small_search_space, 3))
        stats = store.stats()
        assert stats["evaluations"] == 3
        assert stats["problems"] == 1
        assert stats["schema_version"] == SCHEMA_VERSION
        problems = store.problems()
        assert problems[0]["problem_digest"] == PROBLEM
        assert problems[0]["best_accuracy"] == pytest.approx(0.95)
        rows = store.export_rows()
        assert len(rows) == 3
        assert rows[0]["problem_digest"] == PROBLEM
        assert "accuracy" in rows[0] and "cache_key" in rows[0]
        store.close()

    # ------------------------------------------------- corruption/migration
    def test_truncated_file_raises_store_error(self, tmp_path):
        path = tmp_path / "broken.sqlite"
        path.write_bytes(b"SQLite format 3\x00this-is-not-a-real-database")
        with pytest.raises(StoreError, match="not a valid evaluation store"):
            EvaluationStore(path)

    def test_foreign_sqlite_file_raises_store_error(self, tmp_path):
        path = tmp_path / "other.sqlite"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE something_else (x INTEGER)")
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="not an evaluation store"):
            EvaluationStore(path)

    def test_missing_table_raises_store_error_on_reads(self, tmp_path):
        # Valid schema metadata but a dropped evaluations table: opening
        # succeeds (the version check passes), reads must fail loudly.
        path = tmp_path / "store.sqlite"
        EvaluationStore(path).close()
        connection = sqlite3.connect(path)
        connection.execute("DROP TABLE evaluations")
        connection.commit()
        connection.close()
        store = EvaluationStore(path, readonly=True)
        with pytest.raises(StoreError, match="cannot read"):
            store.count()
        with pytest.raises(StoreError, match="cannot read"):
            store.problems()
        with pytest.raises(StoreError, match="cannot read"):
            store.export_rows()
        store.close()

    def test_schema_version_mismatch_raises_store_error(self, tmp_path, small_search_space):
        path = tmp_path / "store.sqlite"
        store = EvaluationStore(path)
        store.put_many(PROBLEM, _evaluations(small_search_space, 1))
        store.close()
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE store_meta SET value='99' WHERE key='schema_version'"
        )
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="schema version 99"):
            EvaluationStore(path)

    # --------------------------------------------------------------- readonly
    def test_readonly_store(self, tmp_path, small_search_space):
        path = tmp_path / "store.sqlite"
        writer = EvaluationStore(path)
        evaluations = _evaluations(small_search_space, 2)
        writer.put_many(PROBLEM, evaluations)
        writer.close()

        reader = EvaluationStore(path, readonly=True)
        assert reader.count() == 2
        assert reader.get(PROBLEM, evaluations[0].genome.cache_key()) is not None
        with pytest.raises(StoreError, match="read-only"):
            reader.put(PROBLEM, evaluations[0])
        with pytest.raises(StoreError, match="read-only"):
            reader.prune(keep_best=1)
        reader.close()

    def test_readonly_missing_file_raises(self, tmp_path):
        with pytest.raises(StoreError, match="not found"):
            EvaluationStore(tmp_path / "absent.sqlite", readonly=True)

    def test_in_memory_store(self, small_search_space):
        store = EvaluationStore(":memory:")
        store.put_many(PROBLEM, _evaluations(small_search_space, 2))
        assert store.count() == 2
        store.close()


class TestStoreBackedCache:
    def test_read_through_promotes_into_memory(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        evaluation = _evaluations(small_search_space, 1)[0]
        store.put(PROBLEM, evaluation)
        cache = StoreBackedCache(store, PROBLEM)
        first = cache.lookup(evaluation.genome)
        assert first is not None and first.from_cache
        assert cache.store_statistics.hits == 1
        # The second lookup is answered by the memory tier.
        second = cache.lookup(evaluation.genome)
        assert second is not None
        assert cache.store_statistics.hits == 1
        store.close()

    def test_write_behind_flushes_in_batches(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        cache = StoreBackedCache(store, PROBLEM, write_batch_size=3)
        evaluations = _evaluations(small_search_space, 4)
        for evaluation in evaluations[:2]:
            cache.store(evaluation)
        assert store.count() == 0  # still queued
        cache.store(evaluations[2])
        assert store.count() == 3  # batch threshold crossed
        cache.store(evaluations[3])
        assert cache.flush() == 1
        assert store.count() == 4
        assert cache.flush() == 0
        store.close()

    def test_lookup_or_reserve_serves_store_hits_without_ownership(
        self, tmp_path, small_search_space
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        evaluation = _evaluations(small_search_space, 1)[0]
        store.put(PROBLEM, evaluation)
        cache = StoreBackedCache(store, PROBLEM)
        served, owner = cache.lookup_or_reserve(evaluation.genome)
        assert not owner
        assert served is not None and served.from_cache
        assert cache.in_flight_count == 0
        store.close()

    def test_complete_queues_fresh_results(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        cache = StoreBackedCache(store, PROBLEM, write_batch_size=1)
        evaluation = _evaluations(small_search_space, 1)[0]
        served, owner = cache.lookup_or_reserve(evaluation.genome)
        assert owner and served is None
        cache.complete(evaluation.genome, evaluation)
        assert store.count() == 1
        store.close()

    def test_readonly_store_disables_writes(self, tmp_path, small_search_space):
        path = tmp_path / "store.sqlite"
        writer = EvaluationStore(path)
        evaluations = _evaluations(small_search_space, 2)
        writer.put(PROBLEM, evaluations[0])
        writer.close()
        store = EvaluationStore(path, readonly=True)
        cache = StoreBackedCache(store, PROBLEM, write_batch_size=1)
        assert cache.lookup(evaluations[0].genome) is not None
        cache.store(evaluations[1])
        assert cache.flush() == 0
        assert store.count() == 1
        store.close()

    def test_failed_and_cached_results_are_not_persisted(self, tmp_path, small_search_space):
        store = EvaluationStore(tmp_path / "store.sqlite")
        cache = StoreBackedCache(store, PROBLEM, write_batch_size=1)
        evaluation = _evaluations(small_search_space, 1)[0]
        cache.store(CandidateEvaluation(genome=evaluation.genome, error="boom"))
        cache.store(evaluation.as_cache_copy())
        cache.flush()
        assert store.count() == 0
        store.close()


def _run_engine(space, evaluator, cache, seed=3, population=6, budget=18, initial=None):
    fitness = FitnessEvaluator([FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()])
    engine = EvolutionaryEngine(
        space=space,
        evaluator=evaluator,
        fitness=fitness,
        config=EngineConfig(population_size=population, max_evaluations=budget, seed=seed),
        cache=cache,
        initial_genomes=initial,
    )
    return engine.run()


class TestWarmStartEngine:
    def test_cold_store_run_is_bit_identical_to_storeless_run(
        self, tmp_path, small_search_space, fake_evaluator
    ):
        plain = _run_engine(small_search_space, fake_evaluator, EvaluationCache())
        store = EvaluationStore(tmp_path / "store.sqlite")
        stored = _run_engine(
            small_search_space, fake_evaluator, StoreBackedCache(store, PROBLEM)
        )
        assert [
            (e.genome.cache_key(), e.accuracy) for e in plain.history.evaluations()
        ] == [(e.genome.cache_key(), e.accuracy) for e in stored.history.evaluations()]
        assert plain.best.genome == stored.best.genome
        store.close()

    def test_second_run_is_served_from_the_store(
        self, tmp_path, small_search_space, fake_evaluator
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        cache = StoreBackedCache(store, PROBLEM)
        first = _run_engine(small_search_space, fake_evaluator, cache)
        cache.flush()
        assert first.statistics.models_evaluated > 0

        warm_cache = StoreBackedCache(store, PROBLEM)
        second = _run_engine(small_search_space, fake_evaluator, warm_cache)
        assert second.statistics.models_evaluated == 0
        assert warm_cache.store_statistics.hits == second.statistics.cache_hits
        assert second.best.genome == first.best.genome
        store.close()

    def test_warm_start_seeds_population_from_best_stored(
        self, tmp_path, small_search_space, fake_evaluator
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        cache = StoreBackedCache(store, PROBLEM)
        _run_engine(small_search_space, fake_evaluator, cache)
        cache.flush()

        seeds = [e.genome for e in store.best(PROBLEM, limit=4)]
        outcome = _run_engine(
            small_search_space,
            fake_evaluator,
            StoreBackedCache(store, PROBLEM),
            seed=4,  # different RNG stream: seeds must still come from the store
            initial=seeds,
        )
        assert outcome.statistics.warm_start_seeds == len(seeds)
        best_stored_key = seeds[0].cache_key()
        seen_keys = {e.genome.cache_key() for e in outcome.history.evaluations()}
        assert best_stored_key in seen_keys
        store.close()

    def test_stale_seeds_outside_the_space_are_filtered(
        self, tmp_path, small_search_space, fake_evaluator, sample_genome
    ):
        # A 64-neuron layer is outside small_search_space's layer-size menu,
        # mimicking a store row written under an older, wider configuration.
        from repro.core.genome import MLPGenome

        stale = sample_genome.with_mlp(
            MLPGenome(hidden_layers=(64,), activations=("relu",))
        )
        assert not small_search_space.contains(stale)
        outcome = _run_engine(
            small_search_space, fake_evaluator, EvaluationCache(), initial=[stale]
        )
        assert outcome.statistics.warm_start_seeds == 0


class TestSearchIntegration:
    @pytest.fixture
    def dataset(self):
        return load_dataset("credit-g", seed=0, scale=0.08)

    def _config(self, dataset, store_path="", warm_start=0, **overrides):
        settings = dict(
            population_size=4,
            max_evaluations=8,
            seed=0,
            training_epochs=2,
            store=StoreConfig(path=str(store_path), warm_start=warm_start),
        )
        settings.update(overrides)
        return ECADConfig.template_for_dataset(dataset, **settings)

    def test_search_populates_store_and_reruns_from_it(self, tmp_path, dataset):
        path = tmp_path / "store.sqlite"
        cold = CoDesignSearch(dataset, config=self._config(dataset, path)).run()
        assert cold.statistics.store_hits == 0
        assert cold.statistics.store_misses == cold.statistics.models_evaluated

        warm = CoDesignSearch(dataset, config=self._config(dataset, path)).run()
        assert warm.statistics.models_evaluated == 0
        assert warm.statistics.store_hits > 0
        assert warm.best_accuracy == cold.best_accuracy

    def test_warm_start_through_the_config(self, tmp_path, dataset):
        path = tmp_path / "store.sqlite"
        CoDesignSearch(dataset, config=self._config(dataset, path)).run()
        warm = CoDesignSearch(
            dataset, config=self._config(dataset, path, warm_start=4)
        ).run()
        assert warm.statistics.warm_start_seeds == 4

    def test_different_seed_is_a_different_problem(self, tmp_path, dataset):
        path = tmp_path / "store.sqlite"
        CoDesignSearch(dataset, config=self._config(dataset, path)).run()
        other = CoDesignSearch(
            dataset, config=self._config(dataset, path, seed=1)
        ).run()
        # Nothing is shared across problem digests: everything re-evaluates.
        assert other.statistics.store_hits == 0

    def test_process_backend_search_writes_to_the_store(self, tmp_path, dataset):
        path = tmp_path / "store.sqlite"
        config = self._config(dataset, path, backend="processes", eval_parallelism=2)
        result = CoDesignSearch(dataset, config=config).run()
        assert result.statistics.models_evaluated > 0
        with EvaluationStore(path, readonly=True) as store:
            assert store.count() == result.statistics.models_evaluated


class TestDigests:
    def test_dataset_fingerprint_tracks_content(self):
        a = load_dataset("credit-g", seed=0, scale=0.05)
        b = load_dataset("credit-g", seed=0, scale=0.05)
        c = load_dataset("credit-g", seed=1, scale=0.05)
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        assert dataset_fingerprint(a) != dataset_fingerprint(c)

    def test_problem_digest_sensitivity(self):
        dataset = load_dataset("credit-g", seed=0, scale=0.05)
        base = ECADConfig.template_for_dataset(dataset)
        assert problem_digest(base, dataset) == problem_digest(base, dataset)
        from dataclasses import replace

        assert problem_digest(replace(base, seed=7), dataset) != problem_digest(base, dataset)
        assert problem_digest(
            replace(base, training_epochs=99), dataset
        ) != problem_digest(base, dataset)
        # Search-shape fields do not change what one evaluation computes.
        assert problem_digest(
            replace(base, max_evaluations=999, population_size=50, eval_parallelism=4),
            dataset,
        ) == problem_digest(base, dataset)


class TestStoreConfig:
    def test_defaults_are_inactive(self):
        config = StoreConfig()
        assert not config.active
        assert StoreConfig(path="x.sqlite").active
        assert not StoreConfig(path="x.sqlite", enabled=False).active

    def test_negative_warm_start_rejected(self):
        with pytest.raises(ConfigurationError):
            StoreConfig(warm_start=-1)

    def test_ecad_config_round_trip_and_strictness(self):
        dataset = load_dataset("credit-g", seed=0, scale=0.05)
        config = ECADConfig.template_for_dataset(
            dataset, store=StoreConfig(path="s.sqlite", warm_start=3)
        )
        back = ECADConfig.from_dict(config.to_dict())
        assert back.store == config.store
        bad = config.to_dict()
        bad["store"]["warm_starts"] = 3
        del bad["store"]["warm_start"]
        with pytest.raises(ConfigurationError, match="store"):
            ECADConfig.from_dict(bad)

    def test_cli_warm_start_without_store_errors(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="warm-start needs a store"):
            main(["run", "--dataset", "credit-g", "--scale", "0.05",
                  "--warm-start", "4", "--dry-run"])
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "ws", "datasets": ["credit-g"], "seeds": [0], "scale": 0.05,
        }))
        with pytest.raises(SystemExit, match="warm-start needs a store"):
            main(["sweep", "--spec", str(spec_path), "--warm-start", "4", "--dry-run"])
        # With a store attached the same invocations are accepted.
        assert main(["run", "--dataset", "credit-g", "--scale", "0.05",
                     "--warm-start", "4", "--store", str(tmp_path / "s.sqlite"),
                     "--dry-run"]) == 0

    def test_store_fields_reachable_via_set_overrides(self):
        dataset = load_dataset("credit-g", seed=0, scale=0.05)
        config = ECADConfig.template_for_dataset(dataset)
        updated = config.with_overrides(["store.path=results/e.sqlite", "store.warm_start=5"])
        assert updated.store.path == "results/e.sqlite"
        assert updated.store.warm_start == 5


# ---------------------------------------------------------------------------
# Two-process concurrent writes (the process-pool deployment shape).
# ---------------------------------------------------------------------------


def _write_worker(path: str, seed: int, count: int) -> int:
    """Child-process body: open the shared store and write ``count`` rows."""
    space = CoDesignSearchSpace()
    rng = np.random.default_rng(seed)
    store = EvaluationStore(path)
    written = 0
    try:
        for index in range(count):
            genome = space.random_genome(rng)
            evaluation = CandidateEvaluation(
                genome=genome, accuracy=0.5 + 0.4 * rng.random(), parameter_count=1
            )
            written += store.put_many(f"problem-{seed}", [evaluation])
    finally:
        store.close()
    return written


class TestConcurrentWrites:
    def test_two_processes_write_the_same_store(self, tmp_path):
        path = str(tmp_path / "shared.sqlite")
        EvaluationStore(path).close()  # create the schema up front
        count = 25
        processes = [
            multiprocessing.Process(target=_write_worker, args=(path, seed, count))
            for seed in (1, 2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        with EvaluationStore(path, readonly=True) as store:
            assert store.count("problem-1") + store.count("problem-2") == 2 * count
            # Every row is still readable (no torn writes).
            assert len(store.export_rows()) == 2 * count

    def test_threaded_writers_share_one_store_instance(self, tmp_path, small_search_space):
        import threading

        store = EvaluationStore(tmp_path / "store.sqlite")
        evaluations = _evaluations(small_search_space, 24)
        chunks = [evaluations[i::4] for i in range(4)]
        threads = [
            threading.Thread(target=store.put_many, args=(PROBLEM, chunk))
            for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.count(PROBLEM) == 24
        store.close()


# ---------------------------------------------------------------------------
# Flush retry: transient write failures must never lose rows.
# ---------------------------------------------------------------------------


class _FlakyStore:
    """Repository wrapper that fails the first ``failures`` put_many calls.

    Stands in for a store hitting transient multi-writer contention
    (``database is locked`` past the busy timeout).
    """

    def __init__(self, store, failures):
        self._store = store
        self.failures = failures
        self.put_calls = 0

    @property
    def readonly(self):
        return self._store.readonly

    @property
    def path(self):
        return self._store.path

    def get(self, problem_digest, genome_key):
        return self._store.get(problem_digest, genome_key)

    def put_many(self, problem_digest, evaluations):
        self.put_calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise StoreError("database is locked (injected)")
        return self._store.put_many(problem_digest, evaluations)


class TestFlushRetry:
    def test_transient_failure_is_retried_within_one_flush(
        self, tmp_path, small_search_space
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        flaky = _FlakyStore(store, failures=2)
        cache = StoreBackedCache(
            flaky, PROBLEM, write_batch_size=1,
            write_retries=3, retry_backoff_seconds=0.0,
        )
        cache.store(_evaluations(small_search_space, 1)[0])
        assert store.count(PROBLEM) == 1
        assert cache.store_statistics.writes == 1
        assert cache.store_statistics.write_retries == 2
        assert cache.store_statistics.write_errors == 0
        assert cache.pending_writes() == 0
        store.close()

    def test_exhausted_retries_requeue_the_batch_without_loss(
        self, tmp_path, small_search_space
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        flaky = _FlakyStore(store, failures=10_000)
        cache = StoreBackedCache(
            flaky, PROBLEM, write_batch_size=64,
            write_retries=2, retry_backoff_seconds=0.0,
        )
        evaluations = _evaluations(small_search_space, 5)
        for evaluation in evaluations:
            cache.store(evaluation)
        assert cache.flush() == 0
        # The batch is re-queued, not discarded: no write_errors, no loss.
        assert cache.pending_writes() == 5
        assert cache.store_statistics.write_errors == 0
        assert store.count(PROBLEM) == 0
        # The store heals (contention passes): the next flush persists all.
        flaky.failures = 0
        assert cache.flush() == 5
        assert store.count(PROBLEM) == 5
        assert cache.store_statistics.write_errors == 0
        assert cache.pending_writes() == 0
        store.close()

    def test_backlog_cap_drops_oldest_and_counts_write_errors(
        self, tmp_path, small_search_space
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        flaky = _FlakyStore(store, failures=10_000)
        cache = StoreBackedCache(
            flaky, PROBLEM, write_batch_size=4, max_pending_writes=4,
            write_retries=0, retry_backoff_seconds=0.0,
        )
        evaluations = _evaluations(small_search_space, 6)
        for evaluation in evaluations:
            cache.store(evaluation)
        cache.flush()
        # Only the overflow beyond max_pending_writes is dropped (oldest
        # first); only those rows count as write_errors.
        assert cache.pending_writes() == 4
        assert cache.store_statistics.write_errors == 2
        flaky.failures = 0
        assert cache.flush() == 4
        keys = {e.genome.cache_key() for e in evaluations[2:]}
        assert {
            row["cache_key"] for row in store.export_rows(problem_digest=PROBLEM)
        } == keys
        store.close()

    def test_failed_auto_flush_backs_off_but_explicit_flush_retries(
        self, tmp_path, small_search_space
    ):
        store = EvaluationStore(tmp_path / "store.sqlite")
        flaky = _FlakyStore(store, failures=1)
        cache = StoreBackedCache(
            flaky, PROBLEM, write_batch_size=1,
            write_retries=0, retry_backoff_seconds=0.0,
        )
        evaluations = _evaluations(small_search_space, 2)
        cache.store(evaluations[0])  # auto-flush fails once, row re-queued
        assert cache.pending_writes() == 1
        # The cooldown suppresses the queue-triggered flush for the next row…
        cache.store(evaluations[1])
        assert cache.pending_writes() == 2
        assert flaky.put_calls == 1
        # …but an explicit flush (end of run) always reaches the store.
        assert cache.flush() == 2
        assert store.count(PROBLEM) == 2
        store.close()


# ---------------------------------------------------------------------------
# Sharded store: routing, auto-detection, and single-file equivalence.
# ---------------------------------------------------------------------------


def _strip_timestamps(rows):
    return [
        {key: value for key, value in row.items() if key != "created_at"}
        for row in rows
    ]


class TestShardedStore:
    PROBLEMS = ("problem-a", "problem-b", "problem-c", "problem-d", "problem-e")

    def _populated_pair(self, tmp_path, space):
        """The same rows written to a single-file and a 4-shard store."""
        single = EvaluationStore(tmp_path / "single.sqlite")
        sharded = EvaluationStore(tmp_path / "sharded", shards=4)
        by_problem = {}
        for index, problem in enumerate(self.PROBLEMS):
            evaluations = _evaluations(space, 4, seed=index)
            by_problem[problem] = evaluations
            single.put_many(problem, evaluations)
            sharded.put_many(problem, evaluations)
        return single, sharded, by_problem

    def test_each_problem_lives_in_exactly_one_shard(self, tmp_path, small_search_space):
        from repro.store import ShardedStore

        store = EvaluationStore(tmp_path / "sharded", shards=4)
        for index, problem in enumerate(self.PROBLEMS):
            store.put_many(problem, _evaluations(small_search_space, 3, seed=index))
        repository = store.repository
        assert isinstance(repository, ShardedStore)
        for problem in self.PROBLEMS:
            owner = repository.shard_index(problem)
            for shard_index_, shard_path in enumerate(repository.shard_paths):
                with EvaluationStore(shard_path) as shard:
                    expected = 3 if shard_index_ == owner else 0
                    assert shard.count(problem) == expected
        store.close()

    def test_sharded_layout_is_auto_detected_on_reopen(self, tmp_path, small_search_space):
        path = tmp_path / "sharded"
        store = EvaluationStore(path, shards=4)
        store.put_many(PROBLEM, _evaluations(small_search_space, 5))
        store.close()
        # No shard count passed: the layout descriptor wins.
        reopened = EvaluationStore(path)
        assert reopened.shards == 4
        assert reopened.count() == 5
        reopened.close()
        # Read-only opening works too (the `ecad store` commands).
        reader = EvaluationStore(path, readonly=True)
        assert reader.count() == 5
        with pytest.raises(StoreError, match="read-only"):
            reader.put_many(PROBLEM, _evaluations(small_search_space, 1))
        reader.close()

    def test_shard_count_mismatch_is_rejected(self, tmp_path):
        EvaluationStore(tmp_path / "sharded", shards=4).close()
        with pytest.raises(StoreError, match="4 shard"):
            EvaluationStore(tmp_path / "sharded", shards=2)

    def test_single_file_with_shards_requested_points_at_migrate(
        self, tmp_path, small_search_space
    ):
        path = tmp_path / "store.sqlite"
        store = EvaluationStore(path)
        store.put_many(PROBLEM, _evaluations(small_search_space, 1))
        store.close()
        with pytest.raises(StoreError, match="ecad store migrate"):
            EvaluationStore(path, shards=4)

    def test_foreign_directory_is_rejected(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(StoreError, match="not a sharded evaluation store"):
            EvaluationStore(tmp_path / "plain")

    def test_sharded_matches_single_file_reads(self, tmp_path, small_search_space):
        single, sharded, by_problem = self._populated_pair(tmp_path, small_search_space)
        try:
            assert sharded.count() == single.count()
            for problem, evaluations in by_problem.items():
                assert sharded.count(problem) == single.count(problem)
                for evaluation in evaluations:
                    key = evaluation.genome.cache_key()
                    lhs = single.get(problem, key)
                    rhs = sharded.get(problem, key)
                    assert evaluation_to_payload(lhs) == evaluation_to_payload(rhs)
                # best(): identical candidates in identical order.
                assert [
                    e.genome.cache_key() for e in single.best(problem, 3)
                ] == [e.genome.cache_key() for e in sharded.best(problem, 3)]
            # Whole-store fan-outs aggregate to the same result.
            assert _strip_timestamps(sharded.export_rows()) == _strip_timestamps(
                single.export_rows()
            )
            assert [
                (p["problem_digest"], p["evaluations"], p["best_accuracy"])
                for p in sharded.problems()
            ] == [
                (p["problem_digest"], p["evaluations"], p["best_accuracy"])
                for p in single.problems()
            ]
        finally:
            single.close()
            sharded.close()

    def test_sharded_matches_single_file_warm_start(self, tmp_path, small_search_space):
        single, sharded, _ = self._populated_pair(tmp_path, small_search_space)
        try:
            for problem in self.PROBLEMS:
                single_seeds = [g.genome.cache_key() for g in single.best(problem, 8)]
                sharded_seeds = [g.genome.cache_key() for g in sharded.best(problem, 8)]
                assert single_seeds == sharded_seeds
        finally:
            single.close()
            sharded.close()

    def test_sharded_prune_fans_out(self, tmp_path, small_search_space):
        _, sharded, by_problem = self._populated_pair(tmp_path, small_search_space)
        removed = sharded.prune(keep_best=1)
        assert removed == sum(len(v) - 1 for v in by_problem.values())
        assert sharded.count() == len(by_problem)
        sharded.close()

    def test_stats_size_includes_wal_sidecars(self, tmp_path, small_search_space):
        from pathlib import Path

        path = tmp_path / "store.sqlite"
        store = EvaluationStore(path)
        store.put_many(PROBLEM, _evaluations(small_search_space, 8))
        sidecar = Path(str(path) + "-wal")
        assert sidecar.exists() and sidecar.stat().st_size > 0
        expected = sum(
            candidate.stat().st_size
            for candidate in (path, sidecar, Path(str(path) + "-shm"))
            if candidate.exists()
        )
        stats = store.stats()
        assert stats["size_bytes"] == expected
        # The old main-file-only measurement undercounted.
        assert stats["size_bytes"] > path.stat().st_size
        assert stats["shards"] == 1
        store.close()

    def test_sharded_stats_aggregate_every_shard(self, tmp_path, small_search_space):
        _, sharded, by_problem = self._populated_pair(tmp_path, small_search_space)
        stats = sharded.stats()
        assert stats["shards"] == 4
        assert stats["evaluations"] == sum(len(v) for v in by_problem.values())
        assert stats["problems"] == len(by_problem)
        total = sum(
            entry.stat().st_size
            for entry in (tmp_path / "sharded").iterdir()
        )
        assert stats["size_bytes"] == total
        sharded.close()

    def test_export_rows_iter_streams_lazily_and_matches_export_rows(
        self, tmp_path, small_search_space
    ):
        for name, shards in (("single.sqlite", 1), ("sharded", 4)):
            store = EvaluationStore(tmp_path / name, shards=shards)
            for index, problem in enumerate(self.PROBLEMS):
                store.put_many(problem, _evaluations(small_search_space, 4, seed=index))
            iterator = store.export_rows_iter(chunk_size=3)
            assert iter(iterator) is iterator  # a true stream, not a list
            assert _strip_timestamps(list(iterator)) == _strip_timestamps(
                store.export_rows()
            )
            per_problem = list(
                store.export_rows_iter(problem_digest=self.PROBLEMS[0], chunk_size=2)
            )
            assert _strip_timestamps(per_problem) == _strip_timestamps(
                store.export_rows(problem_digest=self.PROBLEMS[0])
            )
            store.close()


class TestStoreMigration:
    def _seed_single(self, path, space, problems=3, rows=4):
        store = EvaluationStore(path)
        for index in range(problems):
            store.put_many(f"problem-{index}", _evaluations(space, rows, seed=index))
        store.close()
        return problems * rows

    def test_dry_run_reports_without_writing(self, tmp_path, small_search_space):
        from repro.store import migrate_store

        path = tmp_path / "store.sqlite"
        total = self._seed_single(path, small_search_space)
        report = migrate_store(path, shards=4, dry_run=True)
        assert report["rows"] == total
        assert sum(report["rows_per_shard"]) == total
        assert report["dry_run"] is True
        assert path.is_file()  # untouched
        assert not (tmp_path / "store.sqlite.migrating").exists()

    def test_migrate_to_output_directory(self, tmp_path, small_search_space):
        from repro.store import migrate_store

        path = tmp_path / "store.sqlite"
        total = self._seed_single(path, small_search_space)
        report = migrate_store(path, shards=4, output_path=tmp_path / "out")
        assert report["rows"] == total
        assert path.is_file()  # source preserved on --output migrations
        with EvaluationStore(tmp_path / "out") as sharded:
            assert sharded.shards == 4
            assert sharded.count() == total
            with EvaluationStore(path, readonly=True) as single:
                assert _strip_timestamps(sharded.export_rows()) == _strip_timestamps(
                    single.export_rows()
                )

    def test_in_place_migration_swaps_and_keeps_backup(
        self, tmp_path, small_search_space
    ):
        from repro.store import migrate_store

        path = tmp_path / "store.sqlite"
        total = self._seed_single(path, small_search_space)
        report = migrate_store(path, shards=4)
        assert report["backup"] == str(path) + ".pre-shard.bak"
        assert path.is_dir()
        assert (tmp_path / "store.sqlite.pre-shard.bak").is_file()
        # Same path, now sharded — every consumer reopens transparently.
        with EvaluationStore(path) as store:
            assert store.shards == 4
            assert store.count() == total

    def test_resharding_a_sharded_store(self, tmp_path, small_search_space):
        from repro.store import migrate_store

        path = tmp_path / "store.sqlite"
        total = self._seed_single(path, small_search_space)
        migrate_store(path, shards=2)
        report = migrate_store(path, shards=8, output_path=tmp_path / "wide")
        assert report["rows"] == total
        with EvaluationStore(tmp_path / "wide") as store:
            assert store.shards == 8
            assert store.count() == total

    def test_existing_target_is_refused(self, tmp_path, small_search_space):
        from repro.store import migrate_store

        path = tmp_path / "store.sqlite"
        self._seed_single(path, small_search_space)
        (tmp_path / "out").mkdir()
        with pytest.raises(StoreError, match="already exists"):
            migrate_store(path, shards=4, output_path=tmp_path / "out")


# ---------------------------------------------------------------------------
# Multi-process contention: M processes x K threads, zero lost rows.
# ---------------------------------------------------------------------------


def _contended_cache_writer(path: str, seed: int, threads: int, rows: int) -> None:
    """Child-process body: hammer one store through StoreBackedCache.

    A deliberately tiny busy timeout makes ``database is locked`` likely
    under multi-writer contention; the flush retry/re-queue path must still
    persist every row.
    """
    import threading
    import time as _time

    space = CoDesignSearchSpace()
    store = EvaluationStore(path, timeout_seconds=0.05)
    failures = []

    def body(thread_index: int) -> None:
        try:
            cache = StoreBackedCache(
                store,
                f"contended-{seed}-{thread_index}",
                write_batch_size=1,
                write_retries=4,
                retry_backoff_seconds=0.005,
            )
            for evaluation in _evaluations(space, rows, seed=seed * 100 + thread_index):
                cache.store(evaluation)
            deadline = _time.monotonic() + 60.0
            while cache.pending_writes():
                cache.flush()
                if _time.monotonic() > deadline:
                    raise RuntimeError("pending writes never drained")
        except BaseException as exc:  # noqa: BLE001 - reported via exit code
            failures.append(exc)

    workers = [
        threading.Thread(target=body, args=(index,)) for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    store.close()
    if failures:
        raise SystemExit(1)


class TestContendedWrites:
    PROCESSES = 3
    THREADS = 2
    ROWS = 8

    def _hammer(self, path: str) -> None:
        processes = [
            multiprocessing.Process(
                target=_contended_cache_writer,
                args=(path, seed, self.THREADS, self.ROWS),
            )
            for seed in range(self.PROCESSES)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=180)
            assert process.exitcode == 0

    def test_no_rows_lost_on_a_contended_single_file(self, tmp_path):
        path = str(tmp_path / "contended.sqlite")
        EvaluationStore(path).close()
        self._hammer(path)
        with EvaluationStore(path, readonly=True) as store:
            assert store.count() == self.PROCESSES * self.THREADS * self.ROWS

    def test_no_rows_lost_on_a_contended_sharded_store(self, tmp_path):
        path = str(tmp_path / "contended-sharded")
        EvaluationStore(path, shards=4).close()
        self._hammer(path)
        with EvaluationStore(path, readonly=True) as store:
            assert store.shards == 4
            assert store.count() == self.PROCESSES * self.THREADS * self.ROWS


class TestShardsConfig:
    def test_shards_round_trip_and_validation(self):
        config = StoreConfig(path="s", shards=4)
        assert StoreConfig.from_dict(config.__dict__).shards == 4
        with pytest.raises(ConfigurationError, match="shards"):
            StoreConfig(shards=0)
        with pytest.raises(ConfigurationError, match="shards"):
            StoreConfig(shards=2048)

    def test_shards_reachable_via_set_overrides(self):
        dataset = load_dataset("credit-g", seed=0, scale=0.05)
        config = ECADConfig.template_for_dataset(dataset)
        updated = config.with_overrides(
            ["store.path=results/e.sqlite", "store.shards=4"]
        )
        assert updated.store.shards == 4
        back = ECADConfig.from_dict(updated.to_dict())
        assert back.store.shards == 4

    def test_search_opens_a_sharded_store_from_config(self, tmp_path):
        dataset = load_dataset("credit-g", seed=0, scale=0.05)
        config = ECADConfig.template_for_dataset(
            dataset,
            store=StoreConfig(path=str(tmp_path / "sharded"), shards=4),
        )
        search = CoDesignSearch(dataset, config=config)
        try:
            assert search.store is not None
            assert search.store.shards == 4
        finally:
            search.close()

    def test_service_config_store_shards(self):
        from repro.core.config import ServiceConfig

        config = ServiceConfig(store_path="s", store_shards=4)
        assert ServiceConfig.from_dict(config.to_dict()).store_shards == 4
        with pytest.raises(ConfigurationError, match="store_shards"):
            ServiceConfig(store_shards=0)
