"""Unit tests for the FPGA overlay model, GPU model, synthesis, power, efficiency."""

from __future__ import annotations

import pytest

from repro.hardware.device import ARRIA10_GX1150, STRATIX10_2800, TITAN_X, QUADRO_M5000
from repro.hardware.efficiency import compare_efficiency, device_efficiency, hardware_efficiency
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.gpu_model import GPUPerformanceModel
from repro.hardware.memory import DDR4_BANK, MemorySystem
from repro.hardware.power import FPGAPowerModel, GPUPowerModel
from repro.hardware.results import HardwareMetrics
from repro.hardware.synthesis import SynthesisModel
from repro.hardware.systolic import GridConfig
from repro.nn.mlp import MLPSpec

SMALL_SPEC = MLPSpec(input_size=20, output_size=2, hidden_sizes=(64,), activations=("relu",))
LARGE_SPEC = MLPSpec(input_size=784, output_size=10, hidden_sizes=(512, 256), activations=("relu", "relu"))


class TestFPGAModel:
    def test_metrics_are_well_formed(self, fpga_model, small_grid):
        metrics = fpga_model.evaluate(SMALL_SPEC, small_grid, batch_size=1024)
        assert metrics.device_name == ARRIA10_GX1150.name
        assert metrics.total_time_seconds > 0
        assert metrics.outputs_per_second == pytest.approx(1024 / metrics.total_time_seconds)
        assert 0 < metrics.efficiency <= 1.0
        assert metrics.effective_gflops <= metrics.potential_gflops * (1 + 1e-9)
        assert metrics.latency_seconds < metrics.total_time_seconds
        assert metrics.dram_bytes > 0
        assert 22.0 <= metrics.power_watts <= 32.0

    def test_potential_capped_by_compute_roofline(self, fpga_model):
        grid = GridConfig(rows=16, columns=16, vector_width=4)
        potential = fpga_model.potential_gflops(grid)
        assert potential <= grid.peak_gflops(ARRIA10_GX1150) + 1e-9

    def test_larger_grid_improves_throughput_for_big_network(self, fpga_model):
        small_grid = GridConfig(rows=2, columns=2, interleave_rows=4, interleave_columns=4, vector_width=2)
        large_grid = GridConfig(rows=16, columns=16, interleave_rows=8, interleave_columns=8, vector_width=4)
        slow = fpga_model.evaluate(LARGE_SPEC, small_grid, batch_size=1024)
        fast = fpga_model.evaluate(LARGE_SPEC, large_grid, batch_size=1024)
        assert fast.outputs_per_second > slow.outputs_per_second

    def test_small_network_much_faster_than_large_one(self, fpga_model, small_grid):
        small = fpga_model.evaluate(SMALL_SPEC, small_grid, batch_size=2048)
        large = fpga_model.evaluate(LARGE_SPEC, small_grid, batch_size=2048)
        assert small.outputs_per_second > 5 * large.outputs_per_second

    def test_more_bandwidth_helps_memory_bound_configuration(self):
        grid = GridConfig(rows=16, columns=16, interleave_rows=8, interleave_columns=8, vector_width=4)
        one_bank = FPGAPerformanceModel(ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=1))
        four_banks = FPGAPerformanceModel(ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=4))
        slow = one_bank.evaluate(LARGE_SPEC, grid, batch_size=512)
        fast = four_banks.evaluate(LARGE_SPEC, grid, batch_size=512)
        assert not slow.compute_bound
        assert fast.outputs_per_second > slow.outputs_per_second

    def test_stratix10_outperforms_arria10(self, small_grid):
        grid = GridConfig(rows=16, columns=32, interleave_rows=8, interleave_columns=8, vector_width=8)
        a10 = FPGAPerformanceModel(ARRIA10_GX1150)
        s10 = FPGAPerformanceModel(STRATIX10_2800)
        # the big grid exceeds the Arria 10's DSP budget
        assert not grid.fits(ARRIA10_GX1150)
        assert grid.fits(STRATIX10_2800)
        a10_metrics = a10.evaluate(LARGE_SPEC, small_grid, batch_size=1024)
        s10_metrics = s10.evaluate(LARGE_SPEC, grid, batch_size=1024)
        assert s10_metrics.outputs_per_second > a10_metrics.outputs_per_second

    def test_infeasible_grid_raises(self, fpga_model):
        huge = GridConfig(rows=32, columns=32, vector_width=16)
        with pytest.raises(ValueError):
            fpga_model.evaluate(SMALL_SPEC, huge, batch_size=256)

    def test_invalid_batch_rejected(self, fpga_model, small_grid):
        with pytest.raises(ValueError):
            fpga_model.evaluate(SMALL_SPEC, small_grid, batch_size=0)

    def test_empty_workload_rejected(self, fpga_model, small_grid):
        with pytest.raises(ValueError):
            fpga_model.evaluate_shapes([], small_grid, batch_size=16)

    def test_best_grid_selection(self, fpga_model):
        candidates = [
            GridConfig(rows=2, columns=2, vector_width=2),
            GridConfig(rows=8, columns=8, interleave_rows=8, interleave_columns=8, vector_width=4),
            GridConfig(rows=64, columns=64, vector_width=16),  # infeasible, must be skipped
        ]
        best_config, best_metrics = fpga_model.best_grid_for(LARGE_SPEC, candidates, batch_size=512)
        assert best_config.fits(ARRIA10_GX1150)
        assert best_metrics.outputs_per_second > 0

    def test_layer_timing_components(self, fpga_model, small_grid):
        shape = LARGE_SPEC.gemm_shapes(256)[0]
        timing = fpga_model.layer_timing(shape, small_grid)
        assert timing.compute_seconds > 0
        assert timing.memory_seconds > 0
        assert timing.layer_seconds >= max(timing.compute_seconds, timing.memory_seconds)
        assert timing.first_result_seconds <= timing.layer_seconds


class TestGPUModel:
    def test_metrics_are_well_formed(self, gpu_model):
        metrics = gpu_model.evaluate(SMALL_SPEC, batch_size=256)
        assert metrics.device_name == TITAN_X.name
        assert metrics.potential_gflops == pytest.approx(TITAN_X.peak_gflops)
        assert metrics.dram_bytes == 0.0  # framework timing excludes DRAM
        assert metrics.outputs_per_second == pytest.approx(256 / metrics.total_time_seconds)
        assert 0 < metrics.efficiency < 0.2

    def test_dispatch_overhead_dominates_small_networks(self, gpu_model):
        metrics = gpu_model.evaluate(SMALL_SPEC, batch_size=128)
        dispatch = sum(metrics.extras["dispatch_seconds"])
        assert dispatch > 0.5 * metrics.total_time_seconds

    def test_throughput_insensitive_to_network_shape_for_small_mlps(self, gpu_model):
        """Paper: "for GPU, there is roughly no relationship between the number of
        neurons and the throughput" (small MLPs are dispatch-bound)."""
        narrow = MLPSpec(input_size=20, output_size=2, hidden_sizes=(32,), activations=("relu",))
        wide = MLPSpec(input_size=20, output_size=2, hidden_sizes=(256,), activations=("relu",))
        narrow_metrics = gpu_model.evaluate(narrow, batch_size=256)
        wide_metrics = gpu_model.evaluate(wide, batch_size=256)
        ratio = narrow_metrics.outputs_per_second / wide_metrics.outputs_per_second
        assert 0.8 < ratio < 1.3

    def test_bigger_batches_increase_throughput(self, gpu_model):
        small = gpu_model.evaluate(SMALL_SPEC, batch_size=64)
        large = gpu_model.evaluate(SMALL_SPEC, batch_size=1024)
        assert large.outputs_per_second > small.outputs_per_second

    def test_best_batch_size_picks_larger_batches(self, gpu_model):
        batch, metrics = gpu_model.best_batch_size(SMALL_SPEC, candidates=(64, 256, 1024))
        assert batch == 1024
        assert metrics.outputs_per_second > 0

    def test_faster_device_wins_on_large_networks(self):
        m5000 = GPUPerformanceModel(QUADRO_M5000).evaluate(LARGE_SPEC, batch_size=1024)
        titan = GPUPerformanceModel(TITAN_X).evaluate(LARGE_SPEC, batch_size=1024)
        assert titan.outputs_per_second > m5000.outputs_per_second

    def test_utilization_increases_with_problem_size(self, gpu_model):
        small = gpu_model.utilization(SMALL_SPEC.gemm_shapes(64)[0])
        large = gpu_model.utilization(LARGE_SPEC.gemm_shapes(4096)[0])
        assert large > small

    def test_invalid_inputs(self, gpu_model):
        with pytest.raises(ValueError):
            gpu_model.evaluate(SMALL_SPEC, batch_size=0)
        with pytest.raises(ValueError):
            gpu_model.evaluate_shapes([], batch_size=16)
        with pytest.raises(ValueError):
            gpu_model.best_batch_size(SMALL_SPEC, candidates=())


class TestSynthesisModel:
    def test_report_fields(self):
        report = SynthesisModel().estimate(GridConfig(rows=8, columns=8, vector_width=4), ARRIA10_GX1150)
        assert report.dsp_used == 256
        assert 0 < report.alm_utilization < 1
        assert 0 < report.m20k_utilization < 1
        assert report.fits
        assert 50 <= report.fmax_mhz <= ARRIA10_GX1150.clock_mhz
        assert 22.0 <= report.power_watts <= 32.0

    def test_bigger_grids_use_more_resources_and_less_fmax(self):
        model = SynthesisModel()
        small = model.estimate(GridConfig(rows=2, columns=2, vector_width=2), ARRIA10_GX1150)
        large = model.estimate(GridConfig(rows=16, columns=16, vector_width=4), ARRIA10_GX1150)
        assert large.alm_used > small.alm_used
        assert large.dsp_utilization > small.dsp_utilization
        assert large.fmax_mhz < small.fmax_mhz

    def test_oversized_grid_reported_as_not_fitting(self):
        report = SynthesisModel().estimate(GridConfig(rows=32, columns=32, vector_width=16), ARRIA10_GX1150)
        assert not report.fits

    def test_to_dict_round_trip_keys(self):
        report = SynthesisModel().estimate(GridConfig(rows=4, columns=4), ARRIA10_GX1150)
        data = report.to_dict()
        assert {"alm_used", "m20k_used", "dsp_used", "fmax_mhz", "power_watts"} <= set(data)


class TestPowerModels:
    def test_fpga_power_within_paper_range(self):
        """Paper: Arria 10 designs ranged from 22.5 W to 31.89 W, average 27 W."""
        model = FPGAPowerModel()
        smallest = model.estimate(ARRIA10_GX1150, GridConfig(rows=1, columns=1, vector_width=1))
        largest = model.estimate(ARRIA10_GX1150, GridConfig(rows=16, columns=16, vector_width=4))
        assert smallest == pytest.approx(22.5, abs=0.5)
        assert 22.5 <= largest <= 32.0

    def test_gpu_power_around_paper_average(self):
        """Paper: the GPUs averaged about 50 W of a 150 W budget during MLP runs."""
        model = GPUPowerModel()
        low_utilization_power = model.estimate(QUADRO_M5000, utilization=0.1)
        assert 35.0 <= low_utilization_power <= 60.0
        assert model.estimate(QUADRO_M5000, utilization=1.0) == pytest.approx(150.0)

    def test_power_model_validation(self):
        with pytest.raises(ValueError):
            FPGAPowerModel(static_watts=0)
        with pytest.raises(ValueError):
            GPUPowerModel(idle_fraction=1.5)


class TestEfficiency:
    def _metrics(self, effective: float, potential: float) -> HardwareMetrics:
        return HardwareMetrics(
            device_name="x",
            batch_size=16,
            potential_gflops=potential,
            effective_gflops=effective,
            total_time_seconds=1e-3,
            outputs_per_second=1e4,
            latency_seconds=1e-4,
            efficiency=min(1.0, effective / potential),
        )

    def test_hardware_efficiency_ratio(self):
        assert hardware_efficiency(self._metrics(50, 100)) == pytest.approx(0.5)

    def test_device_efficiency_uses_whole_device(self):
        metrics = self._metrics(50, 100)
        assert device_efficiency(metrics, device_peak_gflops=1000) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            device_efficiency(metrics, device_peak_gflops=0)

    def test_compare_efficiency_mirrors_paper_definitions(self, fpga_model, gpu_model, small_grid):
        fpga_metrics = fpga_model.evaluate(LARGE_SPEC, small_grid, batch_size=1024)
        gpu_metrics = gpu_model.evaluate(LARGE_SPEC, batch_size=256)
        comparison = compare_efficiency(0.98, fpga_metrics, gpu_metrics)
        assert comparison.fpga_efficiency > comparison.gpu_efficiency
        assert comparison.efficiency_advantage > 1.0
        assert comparison.throughput_ratio > 0
