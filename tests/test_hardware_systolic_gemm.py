"""Unit tests for repro.hardware.systolic and repro.hardware.gemm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.device import ARRIA10_GX1150, STRATIX10_2800
from repro.hardware.gemm import block_gemm, mlp_gemm_workload, workload_flops, workload_weight_bytes
from repro.hardware.systolic import GridConfig, GridSearchSpace
from repro.nn.layers import GemmShape
from repro.nn.mlp import MLPSpec


class TestGridConfig:
    def test_dsp_usage_is_product_of_grid_and_vector(self):
        """Paper: "The utilization of DSPs is the product of the grid dimensions and vector width"."""
        config = GridConfig(rows=10, columns=8, vector_width=4)
        assert config.dsp_blocks_used == 10 * 8 * 4
        assert config.pe_count == 80
        assert config.flops_per_cycle == 2 * 320

    def test_block_dimensions(self):
        config = GridConfig(rows=4, columns=8, interleave_rows=16, interleave_columns=2, vector_width=8)
        assert config.block_m == 64
        assert config.block_n == 16
        assert config.block_k == 8

    def test_peak_gflops_on_device(self):
        config = GridConfig(rows=16, columns=16, vector_width=4)
        # 1024 DSPs at 250 MHz -> 512 GFLOP/s
        assert config.peak_gflops(ARRIA10_GX1150) == pytest.approx(512.0)

    def test_fits_and_validate(self):
        small = GridConfig(rows=4, columns=4, vector_width=4)
        assert small.fits(ARRIA10_GX1150)
        small.validate_for(ARRIA10_GX1150)

        too_many_dsps = GridConfig(rows=32, columns=32, vector_width=16)
        assert not too_many_dsps.fits(ARRIA10_GX1150)
        with pytest.raises(ValueError, match="DSP"):
            too_many_dsps.validate_for(ARRIA10_GX1150)
        # a grid that the Arria 10 cannot host but the 4x larger Stratix 10 can
        stratix_only = GridConfig(rows=16, columns=32, vector_width=8)
        assert not stratix_only.fits(ARRIA10_GX1150)
        assert stratix_only.fits(STRATIX10_2800)

    def test_m20k_requirement_grows_with_interleave(self):
        small = GridConfig(rows=8, columns=8, interleave_rows=2, interleave_columns=2)
        big = GridConfig(rows=8, columns=8, interleave_rows=32, interleave_columns=32)
        assert big.m20k_blocks_required() > small.m20k_blocks_required()

    def test_round_trip_dict(self):
        config = GridConfig(rows=8, columns=4, interleave_rows=2, interleave_columns=16, vector_width=8)
        assert GridConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            GridConfig(rows=0, columns=4)
        with pytest.raises(ValueError):
            GridConfig(rows=4, columns=4, vector_width=-1)
        with pytest.raises(ValueError):
            GridConfig(rows=4, columns=4).double_buffer_bytes(0)


class TestGridSearchSpace:
    def test_size_counts_all_combinations(self):
        space = GridSearchSpace(rows=(1, 2), columns=(1, 2), interleave_rows=(1,), interleave_columns=(1,), vector_width=(1, 2))
        assert space.size == 2 * 2 * 1 * 1 * 2
        assert len(space.all_configs()) == space.size

    def test_feasible_configs_fit_device(self):
        space = GridSearchSpace()
        feasible = space.feasible_configs(ARRIA10_GX1150)
        assert feasible
        assert all(config.fits(ARRIA10_GX1150) for config in feasible)
        assert len(feasible) < space.size  # some configurations must be infeasible

    def test_random_config_respects_device(self, rng):
        space = GridSearchSpace()
        for _ in range(20):
            config = space.random_config(rng, device=ARRIA10_GX1150)
            assert config.fits(ARRIA10_GX1150)

    def test_random_config_without_device_is_in_space(self, rng):
        space = GridSearchSpace(rows=(2, 4), columns=(2, 4))
        config = space.random_config(rng)
        assert config.rows in (2, 4) and config.columns in (2, 4)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            GridSearchSpace(rows=())


class TestBlockedGemm:
    def test_tile_counts_use_ceiling_division(self):
        shape = GemmShape(m=100, k=30, n=50)
        config = GridConfig(rows=4, columns=4, interleave_rows=8, interleave_columns=8, vector_width=8)
        blocked = block_gemm(shape, config)
        assert blocked.tiles_m == -(-100 // 32)
        assert blocked.tiles_n == -(-50 // 32)
        assert blocked.k_steps == -(-30 // 8)
        assert blocked.total_tiles == blocked.tiles_m * blocked.tiles_n

    def test_padded_dimensions_cover_problem(self):
        shape = GemmShape(m=100, k=30, n=50)
        config = GridConfig(rows=4, columns=4, interleave_rows=8, interleave_columns=8, vector_width=8)
        blocked = block_gemm(shape, config)
        assert blocked.padded_m >= shape.m
        assert blocked.padded_n >= shape.n
        assert blocked.padded_k >= shape.k
        assert 0 < blocked.padding_efficiency <= 1.0
        assert blocked.padded_flops >= blocked.useful_flops

    def test_exact_fit_has_no_padding_waste(self):
        config = GridConfig(rows=4, columns=4, interleave_rows=4, interleave_columns=4, vector_width=4)
        shape = GemmShape(m=config.block_m * 2, k=config.block_k * 5, n=config.block_n * 3)
        blocked = block_gemm(shape, config)
        assert blocked.padding_efficiency == pytest.approx(1.0)

    def test_compute_cycles_match_mac_throughput(self):
        """For an exactly tiled problem, cycles * MACs/cycle == padded MAC count."""
        config = GridConfig(rows=2, columns=4, interleave_rows=4, interleave_columns=2, vector_width=8)
        shape = GemmShape(m=config.block_m * 3, k=config.block_k * 7, n=config.block_n * 2)
        blocked = block_gemm(shape, config)
        total_macs = blocked.padded_m * blocked.padded_k * blocked.padded_n
        assert blocked.compute_cycles * config.macs_per_cycle == total_macs

    def test_dram_traffic_components(self):
        config = GridConfig(rows=4, columns=4, interleave_rows=2, interleave_columns=2, vector_width=4)
        shape = GemmShape(m=64, k=64, n=64)
        blocked = block_gemm(shape, config)
        expected = (
            blocked.tiles_m * blocked.tile_a_bytes
            + blocked.total_tiles * blocked.tile_b_bytes
            + blocked.total_tiles * blocked.tile_c_bytes
        )
        assert blocked.dram_bytes == expected
        assert blocked.bytes_per_cycle_required > 0


class TestWorkloadExtraction:
    def test_mlp_workload_chains_layer_dimensions(self):
        spec = MLPSpec(input_size=784, output_size=10, hidden_sizes=(256, 128), activations=("relu", "relu"))
        shapes = mlp_gemm_workload(spec, batch_size=32)
        assert [(s.m, s.k, s.n) for s in shapes] == [(32, 784, 256), (32, 256, 128), (32, 128, 10)]

    def test_workload_flops_and_weight_bytes(self):
        spec = MLPSpec(input_size=100, output_size=5, hidden_sizes=(50,), activations=("relu",))
        shapes = mlp_gemm_workload(spec, batch_size=10)
        assert workload_flops(shapes) == 2 * 10 * (100 * 50 + 50 * 5)
        assert workload_weight_bytes(shapes) == 4 * (100 * 50 + 50 * 5)

    def test_batch_size_only_scales_m(self):
        spec = MLPSpec(input_size=64, output_size=4, hidden_sizes=(32,), activations=("relu",))
        small = mlp_gemm_workload(spec, batch_size=8)
        large = mlp_gemm_workload(spec, batch_size=64)
        assert workload_flops(large) == 8 * workload_flops(small)
        assert workload_weight_bytes(large) == workload_weight_bytes(small)
