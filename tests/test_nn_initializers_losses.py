"""Unit tests for repro.nn.initializers and repro.nn.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import (
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    RandomNormal,
    RandomUniform,
    Zeros,
    available_initializers,
    default_initializer_for,
    get_initializer,
)
from repro.nn.losses import (
    BinaryCrossEntropy,
    CategoricalCrossEntropy,
    MeanSquaredError,
    available_losses,
    get_loss,
)


class TestInitializers:
    def test_zeros_produces_zero_matrix(self, rng):
        weights = Zeros()((4, 3), rng)
        assert weights.shape == (4, 3)
        assert np.all(weights == 0.0)

    def test_glorot_uniform_bound(self, rng):
        fan_in, fan_out = 100, 50
        weights = GlorotUniform()((fan_in, fan_out), rng)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(weights) <= limit)

    def test_he_uniform_bound(self, rng):
        fan_in = 64
        weights = HeUniform()((fan_in, 32), rng)
        limit = np.sqrt(6.0 / fan_in)
        assert np.all(np.abs(weights) <= limit)

    def test_normal_initializers_std_roughly_correct(self, rng):
        fan_in, fan_out = 400, 400
        glorot = GlorotNormal()((fan_in, fan_out), rng)
        he = HeNormal()((fan_in, fan_out), rng)
        assert glorot.std() == pytest.approx(np.sqrt(2.0 / (fan_in + fan_out)), rel=0.1)
        assert he.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.1)

    def test_random_uniform_and_normal_parameters_validated(self):
        with pytest.raises(ValueError):
            RandomNormal(stddev=0.0)
        with pytest.raises(ValueError):
            RandomUniform(limit=-1.0)

    def test_bad_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            GlorotUniform()((0, 5), rng)

    def test_registry_roundtrip(self):
        for name in available_initializers():
            assert get_initializer(name).name == name

    def test_unknown_initializer_raises(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            get_initializer("magic")

    def test_default_initializer_follows_activation_family(self):
        assert isinstance(default_initializer_for("relu"), HeUniform)
        assert isinstance(default_initializer_for("elu"), HeUniform)
        assert isinstance(default_initializer_for("tanh"), GlorotUniform)
        assert isinstance(default_initializer_for("sigmoid"), GlorotUniform)

    def test_deterministic_given_same_rng_seed(self):
        a = GlorotUniform()((8, 8), np.random.default_rng(3))
        b = GlorotUniform()((8, 8), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestCategoricalCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        predictions = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert CategoricalCrossEntropy().forward(predictions, targets) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_prediction_loss_is_log_classes(self):
        targets = np.eye(4)
        predictions = np.full((4, 4), 0.25)
        assert CategoricalCrossEntropy().forward(predictions, targets) == pytest.approx(np.log(4))

    def test_gradient_is_probability_minus_target_over_batch(self):
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        predictions = np.array([[0.7, 0.3], [0.4, 0.6]])
        grad = CategoricalCrossEntropy().gradient(predictions, targets)
        np.testing.assert_allclose(grad, (predictions - targets) / 2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            CategoricalCrossEntropy().forward(np.ones((2, 3)), np.ones((2, 2)))

    def test_loss_handles_zero_probability_without_inf(self):
        targets = np.array([[1.0, 0.0]])
        predictions = np.array([[0.0, 1.0]])
        value = CategoricalCrossEntropy().forward(predictions, targets)
        assert np.isfinite(value) and value > 10


class TestOtherLosses:
    def test_mse_zero_when_equal(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert MeanSquaredError().forward(values, values) == 0.0

    def test_mse_gradient_matches_finite_difference(self):
        predictions = np.array([[0.2, 0.8], [0.6, 0.1]])
        targets = np.array([[0.0, 1.0], [1.0, 0.0]])
        loss = MeanSquaredError()
        grad = loss.gradient(predictions, targets)
        eps = 1e-6
        numeric = np.zeros_like(predictions)
        for i in range(predictions.shape[0]):
            for j in range(predictions.shape[1]):
                bumped_up = predictions.copy()
                bumped_up[i, j] += eps
                bumped_down = predictions.copy()
                bumped_down[i, j] -= eps
                numeric[i, j] = (loss.forward(bumped_up, targets) - loss.forward(bumped_down, targets)) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-8)

    def test_binary_cross_entropy_symmetric_case(self):
        predictions = np.array([[0.5]])
        targets = np.array([[1.0]])
        assert BinaryCrossEntropy().forward(predictions, targets) == pytest.approx(np.log(2))

    def test_loss_registry(self):
        assert set(available_losses()) >= {
            "categorical_cross_entropy",
            "binary_cross_entropy",
            "mean_squared_error",
        }
        assert isinstance(get_loss("mean_squared_error"), MeanSquaredError)
        instance = CategoricalCrossEntropy()
        assert get_loss(instance) is instance
        with pytest.raises(ValueError):
            get_loss("hinge")

    def test_1d_inputs_are_accepted(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
