"""Shared fixtures for the test suite.

Fixtures are deliberately small (tiny datasets, few epochs, small populations)
so the whole suite runs in a few minutes while still exercising every code
path end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidate import CandidateEvaluation
from repro.core.genome import (
    CoDesignGenome,
    CoDesignSearchSpace,
    HardwareGenome,
    HardwareSearchSpace,
    MLPGenome,
    MLPSearchSpace,
)
from repro.datasets.base import Dataset
from repro.datasets.synthetic import SyntheticSpec, make_classification
from repro.hardware.device import ARRIA10_GX1150, TITAN_X
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.gpu_model import GPUPerformanceModel
from repro.hardware.systolic import GridConfig, GridSearchSpace
from repro.nn.mlp import MLPSpec
from repro.nn.training import TrainingConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG shared by randomized tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset() -> Dataset:
    """A small, easy binary-classification dataset (fast to train on)."""
    spec = SyntheticSpec(
        name="tiny",
        num_features=12,
        num_classes=2,
        num_samples=160,
        class_separation=3.0,
        prototypes_per_class=1,
        noise_feature_fraction=0.2,
    )
    return make_classification(spec, seed=7)


@pytest.fixture
def tiny_presplit_dataset() -> Dataset:
    """A small dataset with a dedicated test partition (1-fold protocol)."""
    spec = SyntheticSpec(
        name="tiny_presplit",
        num_features=10,
        num_classes=3,
        num_samples=150,
        num_test_samples=60,
        class_separation=3.0,
        prototypes_per_class=1,
        noise_feature_fraction=0.2,
    )
    return make_classification(spec, seed=11)


@pytest.fixture
def small_mlp_spec() -> MLPSpec:
    """A small MLP specification matching the tiny dataset."""
    return MLPSpec(input_size=12, output_size=2, hidden_sizes=(16,), activations=("relu",))


@pytest.fixture
def fast_training_config() -> TrainingConfig:
    """Few epochs, early stopping off, for quick tests."""
    return TrainingConfig(
        epochs=5,
        batch_size=16,
        learning_rate=0.01,
        early_stopping_patience=0,
        validation_fraction=0.0,
    )


@pytest.fixture
def small_grid() -> GridConfig:
    """A modest grid configuration that fits every catalogue device."""
    return GridConfig(rows=8, columns=8, interleave_rows=4, interleave_columns=4, vector_width=4)


@pytest.fixture
def small_search_space() -> CoDesignSearchSpace:
    """A compact co-design search space for engine tests."""
    return CoDesignSearchSpace(
        mlp_space=MLPSearchSpace(
            min_layers=1,
            max_layers=2,
            layer_sizes=(8, 16, 32),
            activations=("relu", "tanh"),
        ),
        hardware_space=HardwareSearchSpace(
            grid_space=GridSearchSpace(
                rows=(2, 4, 8),
                columns=(2, 4, 8),
                interleave_rows=(2, 4),
                interleave_columns=(2, 4),
                vector_width=(2, 4),
            ),
            batch_sizes=(256, 512, 1024),
        ),
        gpu_batch_sizes=(128, 256),
    )


@pytest.fixture
def sample_genome(small_grid) -> CoDesignGenome:
    """A fixed, feasible co-design genome."""
    return CoDesignGenome(
        mlp=MLPGenome(hidden_layers=(16, 8), activations=("relu", "tanh"), use_bias=True),
        hardware=HardwareGenome(grid=small_grid, batch_size=1024),
        gpu_batch_size=256,
    )


@pytest.fixture
def fpga_model() -> FPGAPerformanceModel:
    """Arria 10 FPGA performance model."""
    return FPGAPerformanceModel(ARRIA10_GX1150)


@pytest.fixture
def gpu_model() -> GPUPerformanceModel:
    """Titan X GPU performance model."""
    return GPUPerformanceModel(TITAN_X)


def make_fake_evaluation(
    genome: CoDesignGenome,
    accuracy: float,
    fpga_outputs: float = 0.0,
    gpu_outputs: float = 0.0,
) -> CandidateEvaluation:
    """Build a CandidateEvaluation with synthetic hardware metrics (test helper)."""
    from repro.hardware.results import HardwareMetrics

    def metrics(device: str, outputs: float) -> HardwareMetrics | None:
        if outputs <= 0:
            return None
        return HardwareMetrics(
            device_name=device,
            batch_size=1024,
            potential_gflops=100.0,
            effective_gflops=min(50.0, outputs / 1e5),
            total_time_seconds=1024 / outputs,
            outputs_per_second=outputs,
            latency_seconds=1e-4,
            efficiency=min(1.0, outputs / 1e7),
        )

    return CandidateEvaluation(
        genome=genome,
        accuracy=accuracy,
        parameter_count=genome.mlp.total_hidden_neurons * 10,
        fpga_metrics=metrics("fpga", fpga_outputs),
        gpu_metrics=metrics("gpu", gpu_outputs),
        evaluation_seconds=0.01,
    )


@pytest.fixture
def fake_evaluator():
    """A cheap deterministic evaluator usable in place of the Master.

    Accuracy rises with network size (saturating), FPGA throughput falls with
    network size, giving a genuine accuracy/throughput trade-off for the
    engine to explore.
    """

    def evaluate(genome: CoDesignGenome) -> CandidateEvaluation:
        neurons = genome.mlp.total_hidden_neurons
        accuracy = min(0.99, 0.5 + 0.4 * (1.0 - np.exp(-neurons / 32.0)))
        fpga_outputs = 1e7 / (1.0 + neurons / 8.0) * (genome.hardware.grid.pe_count / 16.0)
        gpu_outputs = 1.2e6
        return make_fake_evaluation(genome, accuracy, fpga_outputs, gpu_outputs)

    return evaluate
