"""Integration-level checks of the paper's headline qualitative claims.

These tests exercise several subsystems together (dataset shapes -> GEMM
workloads -> hardware models -> efficiency/Pareto analysis) but avoid any
network training, so they run in milliseconds and act as fast regression
guards for the *shapes* the benchmark harness verifies at larger scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pareto import ParetoPoint, pareto_frontier
from repro.datasets.synthetic import PAPER_DATASET_SPECS
from repro.hardware.device import ARRIA10_GX1150, QUADRO_M5000, STRATIX10_2800, TITAN_X
from repro.hardware.efficiency import compare_efficiency
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.gpu_model import GPUPerformanceModel
from repro.hardware.memory import DDR4_BANK, MemorySystem
from repro.hardware.systolic import GridConfig, GridSearchSpace
from repro.nn.mlp import MLPSpec


def _spec_for(dataset_name: str, hidden: tuple[int, ...]) -> MLPSpec:
    spec = PAPER_DATASET_SPECS[dataset_name]
    return MLPSpec(
        input_size=spec.num_features,
        output_size=spec.num_classes,
        hidden_sizes=hidden,
        activations=tuple("relu" for _ in hidden),
    )


def _best_fpga(device, spec, batch=2048):
    model = FPGAPerformanceModel(device)
    candidates = GridSearchSpace().feasible_configs(device)[::11]
    _, metrics = model.best_grid_for(spec, candidates, batch_size=batch)
    return metrics


class TestHeadlineClaims:
    def test_fpga_beats_gpu_on_small_tabular_networks(self):
        """Paper Table IV: for Credit-g / Phishing-class networks the FPGA wins."""
        for dataset in ("credit_g_like", "phishing_like"):
            spec = _spec_for(dataset, (64, 32))
            fpga = _best_fpga(STRATIX10_2800, spec)
            _, gpu = GPUPerformanceModel(TITAN_X).best_batch_size(spec)
            assert fpga.outputs_per_second > gpu.outputs_per_second, dataset

    def test_mnist_class_network_is_roughly_at_parity(self):
        """Paper Figure 4: MNIST-sized networks end up near throughput parity."""
        spec = _spec_for("mnist_like", (512, 256))
        fpga = _best_fpga(STRATIX10_2800, spec)
        _, gpu = GPUPerformanceModel(TITAN_X).best_batch_size(spec)
        ratio = fpga.outputs_per_second / gpu.outputs_per_second
        assert 0.2 <= ratio <= 20.0

    def test_fpga_efficiency_dominates_gpu_efficiency(self):
        """Paper Figure 4: ~41.5% allocated-logic efficiency vs ~0.3% device efficiency."""
        spec = _spec_for("mnist_like", (512, 256))
        fpga = _best_fpga(STRATIX10_2800, spec)
        gpu = GPUPerformanceModel(TITAN_X).evaluate(spec, batch_size=256)
        comparison = compare_efficiency(0.98, fpga, gpu)
        assert comparison.fpga_efficiency > 10 * comparison.gpu_efficiency

    def test_fpga_latency_is_far_below_gpu_latency(self):
        """Paper section III-D: the FPGA "does not need to increase batching",
        yielding a lower-batch, lower-latency accelerator than the GPU, which
        must batch large to fill its cores."""
        spec = _spec_for("har_like", (128, 64))
        fpga = FPGAPerformanceModel(ARRIA10_GX1150).evaluate(
            spec, GridConfig(8, 8, 4, 4, 4), batch_size=32
        )
        gpu = GPUPerformanceModel(QUADRO_M5000).evaluate(spec, batch_size=1024)
        assert fpga.latency_seconds < gpu.latency_seconds

    def test_stratix10_scales_over_arria10(self):
        """Paper section IV-D: the Stratix 10 offers a large scaling over the Arria 10."""
        spec = _spec_for("har_like", (256, 128))
        a10 = _best_fpga(ARRIA10_GX1150, spec)
        s10 = _best_fpga(STRATIX10_2800, spec)
        assert s10.outputs_per_second > 1.5 * a10.outputs_per_second

    def test_bandwidth_bound_designs_scale_with_banks(self):
        """Paper section IV-C / Figure 3: near-linear throughput scaling when starved."""
        spec = _spec_for("bioresponse_like", (1024, 512))
        grid = GridConfig(rows=16, columns=16, interleave_rows=1, interleave_columns=8, vector_width=4)
        results = {}
        for banks in (1, 2, 4):
            model = FPGAPerformanceModel(
                ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=banks)
            )
            results[banks] = model.evaluate(spec, grid, batch_size=2048)
        assert not results[1].compute_bound
        assert results[2].outputs_per_second / results[1].outputs_per_second > 1.7
        assert results[4].outputs_per_second / results[1].outputs_per_second > 3.0
        # efficiency does not improve beyond its 1-bank value by more than noise
        assert results[4].efficiency <= max(1.0, 1.25 * results[1].efficiency)

    def test_gpu_throughput_flat_across_architectures_fpga_not(self):
        """Paper Figure 2: GPU throughput is network-insensitive, FPGA throughput is not."""
        hidden_options = [(32,), (128,), (512,), (128, 128), (512, 256)]
        gpu_model = GPUPerformanceModel(QUADRO_M5000)
        fpga_model = FPGAPerformanceModel(ARRIA10_GX1150)
        grid = GridConfig(16, 8, 4, 8, 4)
        gpu_throughput = []
        fpga_throughput = []
        for hidden in hidden_options:
            spec = _spec_for("har_like", hidden)
            gpu_throughput.append(gpu_model.evaluate(spec, batch_size=256).outputs_per_second)
            fpga_throughput.append(
                fpga_model.evaluate(spec, grid, batch_size=1024).outputs_per_second
            )
        gpu_spread = max(gpu_throughput) / min(gpu_throughput)
        fpga_spread = max(fpga_throughput) / min(fpga_throughput)
        assert fpga_spread > 2 * gpu_spread

    def test_accuracy_throughput_frontier_orders_correctly(self):
        """A frontier built from model outputs is monotone: more throughput costs accuracy."""
        spec_small = _spec_for("credit_g_like", (16,))
        spec_large = _spec_for("credit_g_like", (512, 256))
        model = FPGAPerformanceModel(ARRIA10_GX1150)
        grid = GridConfig(16, 8, 4, 8, 4)
        small_metrics = model.evaluate(spec_small, grid, batch_size=2048)
        large_metrics = model.evaluate(spec_large, grid, batch_size=2048)
        # emulate "bigger nets are more accurate but slower"
        points = [
            ParetoPoint(values=(0.76, small_metrics.outputs_per_second), payload="small"),
            ParetoPoint(values=(0.80, large_metrics.outputs_per_second), payload="large"),
        ]
        frontier = pareto_frontier(points)
        assert len(frontier) == 2  # genuine trade-off: neither dominates
        assert small_metrics.outputs_per_second > large_metrics.outputs_per_second

    def test_paper_dataset_workloads_have_expected_gemm_footprints(self):
        """First-layer k equals the dataset width, last-layer n the class count."""
        for name, spec in PAPER_DATASET_SPECS.items():
            mlp = MLPSpec(
                input_size=spec.num_features,
                output_size=spec.num_classes,
                hidden_sizes=(128,),
                activations=("relu",),
            )
            shapes = mlp.gemm_shapes(batch_size=64)
            assert shapes[0].k == spec.num_features, name
            assert shapes[-1].n == spec.num_classes, name
            assert all(s.m == 64 for s in shapes)
