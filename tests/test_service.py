"""The co-design job service: queue, HTTP API, runtime, CLI verbs, crash recovery."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import ServiceConfig
from repro.core.errors import ConfigurationError, ServiceError
from repro.service import (
    CoDesignService,
    JobQueue,
    ServiceClient,
    deterministic_result_digest,
    normalize_job_spec,
)
from repro.service.http import ApiError, Router

#: Small enough to finish in seconds, big enough to stream frontier events.
TINY_RUN = {
    "dataset": "phishing",
    "objective": "accuracy",
    "scale": 0.05,
    "population_size": 4,
    "max_evaluations": 6,
    "training_epochs": 1,
}


def tiny_service(tmp_path, **config_kwargs) -> CoDesignService:
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        data_dir=str(tmp_path / "service"),
        eval_workers=2,
        **config_kwargs,
    )
    return CoDesignService(config)


@pytest.fixture
def service(tmp_path):
    svc = tiny_service(tmp_path)
    host, port = svc.start()
    yield svc, ServiceClient(f"{host}:{port}")
    svc.stop()


# ---------------------------------------------------------------- job queue
class TestJobQueue:
    def test_submit_get_list_counts(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job = queue.submit({"name": "exp-a"}, name="first")
        assert job.state == "queued" and job.name == "first"
        assert queue.get(job.job_id).spec == {"name": "exp-a"}
        queue.submit({"name": "exp-b"})
        assert [j.name for j in queue.list()] == ["exp-b", "first"]  # newest first
        counts = queue.counts()
        assert counts["queued"] == 2 and counts["total"] == 2
        assert queue.list(state="done") == []
        with pytest.raises(ServiceError, match="unknown job state"):
            queue.list(state="bogus")
        with pytest.raises(ServiceError, match="unknown job"):
            queue.get("nope")

    def test_claim_is_fifo_and_exclusive(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        first = queue.submit({}, name="one")
        queue.submit({}, name="two")
        claimed = queue.claim_next()
        assert claimed.job_id == first.job_id
        assert claimed.state == "running" and claimed.attempts == 1
        assert queue.claim_next().name == "two"
        assert queue.claim_next() is None

    def test_lifecycle_transitions(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job = queue.submit({})
        queue.claim_next()
        done = queue.mark_done(job.job_id, {"answer": 42})
        assert done.state == "done" and done.result == {"answer": 42}
        assert done.terminal and done.finished_at is not None

        job2 = queue.submit({})
        queue.claim_next()
        failed = queue.mark_failed(job2.job_id, "boom")
        assert failed.state == "failed" and failed.error == "boom"

    def test_cancel_semantics(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        queued = queue.submit({})
        # Queued jobs cancel immediately.
        assert queue.request_cancel(queued.job_id).state == "cancelled"
        # Running jobs only get the flag; the worker stops them later.
        running = queue.submit({})
        queue.claim_next()
        flagged = queue.request_cancel(running.job_id)
        assert flagged.state == "running" and flagged.cancel_requested
        assert queue.cancel_requested(running.job_id)
        assert queue.mark_cancelled(running.job_id).state == "cancelled"
        # Terminal jobs are left untouched.
        assert queue.request_cancel(running.job_id).state == "cancelled"

    def test_recover_interrupted_requeues_running(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = JobQueue(path)
        job = queue.submit({})
        queue.claim_next()
        queue.close()
        # A new server process opens the same file and finds the orphan.
        reopened = JobQueue(path)
        recovered = reopened.recover_interrupted()
        assert [j.job_id for j in recovered] == [job.job_id]
        assert reopened.get(job.job_id).state == "queued"
        assert reopened.get(job.job_id).attempts == 1  # claim counted, not reset

    def test_progress_and_stage_upsert(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job = queue.submit({})
        queue.record_progress(job.job_id, total_cells=3)
        queue.record_progress(job.job_id, run_id="cell-a", stage={"status": "completed"})
        queue.record_progress(job.job_id, run_id="cell-a", stage={"status": "completed"})
        queue.record_progress(job.job_id, run_id="cell-b", stage={"status": "failed"})
        record = queue.get(job.job_id)
        assert record.total_cells == 3 and record.completed_cells == 2
        assert record.stages["cell-b"] == {"status": "failed"}

    def test_frontier_events_append_since_drop(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job = queue.submit({})
        assert queue.append_frontier_event(job.job_id, "cell-a", {"n": 1}) == 1
        assert queue.append_frontier_event(job.job_id, "cell-a", {"n": 2}) == 2
        assert queue.append_frontier_event(job.job_id, "cell-b", {"n": 3}) == 3
        assert [e.payload["n"] for e in queue.frontier_events(job.job_id)] == [1, 2, 3]
        assert [e.seq for e in queue.frontier_events(job.job_id, since=2)] == [3]
        # Crash hygiene: events of cells about to re-run are dropped.
        dropped = queue.drop_frontier_events(job.job_id, keep_run_ids={"cell-a"})
        assert dropped == 1
        assert [e.run_id for e in queue.frontier_events(job.job_id)] == ["cell-a", "cell-a"]

    def test_wait_for_events_times_out_and_wakes(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        job = queue.submit({})
        start = time.monotonic()
        events, record = queue.wait_for_events(job.job_id, timeout=0.1)
        assert events == [] and not record.terminal
        assert time.monotonic() - start >= 0.1
        # Terminal jobs return immediately, no blocking.
        queue.claim_next()
        queue.mark_done(job.job_id, {})
        start = time.monotonic()
        events, record = queue.wait_for_events(job.job_id, timeout=5.0)
        assert record.terminal and time.monotonic() - start < 1.0

    def test_state_survives_reopen(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = JobQueue(path)
        job = queue.submit({"datasets": ["phishing"]}, name="durable")
        queue.append_frontier_event(job.job_id, "cell", {"n": 1})
        queue.close()
        reopened = JobQueue(path)
        assert reopened.get(job.job_id).name == "durable"
        assert len(reopened.frontier_events(job.job_id)) == 1

    def test_foreign_sqlite_file_rejected(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.sqlite"
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE widgets (id INTEGER)")
        with pytest.raises(ServiceError, match="not a job queue"):
            JobQueue(path)


# ------------------------------------------------------------------- digest
class TestDeterministicDigest:
    def test_ignores_timing_and_cache_provenance(self):
        base = {
            "artifacts": [
                {
                    "best_accuracy": 0.9,
                    "wall_clock_seconds": 12.5,
                    "statistics": {"models_evaluated": 10},
                    "best_candidate": {"train_seconds": 1.0, "from_cache": False, "acc": 0.9},
                }
            ]
        }
        slower = {
            "artifacts": [
                {
                    "best_accuracy": 0.9,
                    "wall_clock_seconds": 99.9,
                    "statistics": {"models_evaluated": 3},
                    "best_candidate": {"train_seconds": 7.7, "from_cache": True, "acc": 0.9},
                }
            ]
        }
        assert deterministic_result_digest(base) == deterministic_result_digest(slower)

    def test_sensitive_to_real_content(self):
        assert deterministic_result_digest({"best_accuracy": 0.9}) != deterministic_result_digest(
            {"best_accuracy": 0.91}
        )


# ------------------------------------------------------------ job payloads
class TestNormalizeJobSpec:
    def test_run_shorthand_routes_overrides(self):
        spec, name = normalize_job_spec({"run": dict(TINY_RUN)})
        assert name == "run-phishing"
        assert spec["datasets"] == ["phishing"]
        assert spec["objectives"] == ["accuracy"]
        assert spec["scale"] == 0.05  # spec-level key passes through
        # Engine knobs land in the dotted-key configuration overrides.
        assert spec["overrides"]["population_size"] == 4
        assert spec["overrides"]["training_epochs"] == 1

    def test_full_spec_passthrough(self):
        spec, name = normalize_job_spec(
            {"spec": {"name": "grid", "datasets": ["phishing"], "objectives": ["accuracy"]}}
        )
        assert name == "grid" and spec["name"] == "grid"

    def test_rejects_malformed_payloads(self):
        with pytest.raises(ServiceError, match="exactly one"):
            normalize_job_spec({})
        with pytest.raises(ServiceError, match="exactly one"):
            normalize_job_spec({"spec": {}, "run": {}})
        with pytest.raises(ServiceError, match="dataset"):
            normalize_job_spec({"run": {"objective": "accuracy"}})
        with pytest.raises(ServiceError, match="invalid job spec"):
            normalize_job_spec({"spec": {"name": "x", "bogus_key": 1}})


# ------------------------------------------------------------------- router
class TestRouter:
    def test_placeholders_and_methods(self):
        router = Router()
        router.add("GET", "/jobs/{job_id}/frontier", lambda r: {"id": r.params["job_id"]})
        handler, params = router.dispatch("GET", "/jobs/abc123/frontier")
        assert params == {"job_id": "abc123"}
        with pytest.raises(ApiError) as not_found:
            router.dispatch("GET", "/nope")
        assert not_found.value.status == 404
        with pytest.raises(ApiError) as wrong_method:
            router.dispatch("DELETE", "/jobs/abc123/frontier")
        assert wrong_method.value.status == 405


# ----------------------------------------------------------- HTTP API (e2e)
class TestServiceIntegration:
    def test_health_and_version(self, service):
        from repro import __version__

        _, client = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__

    def test_submit_runs_to_done_with_digest(self, service):
        _, client = service
        job = client.submit({"run": dict(TINY_RUN)})
        assert job["state"] == "queued"
        payload = client.wait(job["job_id"], poll_seconds=0.2, timeout=120)
        assert payload["state"] == "done"
        result = payload["result"]
        assert result["completed_cells"] == 1 and result["failed_cells"] == 0
        assert re.fullmatch(r"[0-9a-f]{64}", result["result_digest"])
        assert result["report"]["artifacts"][0]["status"] == "completed"
        # Progress checkpoints were recorded along the way.
        record = client.job(job["job_id"])
        assert record["completed_cells"] == record["total_cells"] == 1

    def test_frontier_long_poll_streams_events(self, service):
        _, client = service
        job = client.submit({"run": dict(TINY_RUN)})
        events = list(client.stream_frontier(job["job_id"], poll_timeout=2.0))
        assert events, "a completed run must stream at least one frontier event"
        sequences = [event["seq"] for event in events]
        assert sequences == sorted(sequences)
        assert {"run_id", "step", "frontier_size", "member"} <= set(events[0])
        # The poll cursor is resumable: asking again from the last seq is empty.
        final = client.frontier(job["job_id"], since=sequences[-1], timeout=0.2)
        assert final["terminal"] and final["events"] == []

    def test_result_is_202_while_pending(self, service):
        svc, client = service
        # Stall the queue with a fat job so the second one stays queued.
        blocker = client.submit({"run": {**TINY_RUN, "max_evaluations": 200}})
        queued = client.submit({"run": dict(TINY_RUN)})
        finished, payload = client.result(queued["job_id"])
        assert not finished and payload["state"] in ("queued", "running")
        client.cancel(blocker["job_id"])
        client.cancel(queued["job_id"])

    def test_cancel_running_job(self, service):
        _, client = service
        job = client.submit({"run": {**TINY_RUN, "max_evaluations": 500}})
        deadline = time.monotonic() + 30
        while client.job(job["job_id"])["state"] == "queued":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.1)
        client.cancel(job["job_id"])
        payload = client.wait(job["job_id"], poll_seconds=0.2, timeout=60)
        assert payload["state"] == "cancelled"

    def test_error_statuses(self, service):
        _, client = service
        status, payload = client.request("GET", "/jobs/doesnotexist")
        assert status == 404 and "unknown job" in payload["error"]
        status, payload = client.request("POST", "/jobs", body={"run": {}})
        assert status == 400
        status, payload = client.request("GET", "/nope")
        assert status == 404
        status, payload = client.request("GET", "/jobs", query={"limit": "banana"})
        assert status == 400 and "limit" in payload["error"]

    def test_failed_cell_marks_job_failed(self, service):
        _, client = service
        job = client.submit({"run": {**TINY_RUN, "dataset": "phishing", "fpga": "no-such-fpga"}})
        payload = client.wait(job["job_id"], poll_seconds=0.2, timeout=60)
        assert payload["state"] == "failed"
        assert "failed" in payload["error"]

    def test_concurrent_jobs_stream_independent_frontiers(self, tmp_path):
        svc = tiny_service(tmp_path, max_concurrent_jobs=2)
        host, port = svc.start()
        try:
            client = ServiceClient(f"{host}:{port}")
            job_a = client.submit({"run": dict(TINY_RUN)})
            job_b = client.submit({"run": {**TINY_RUN, "seed": 7}})
            events_a = list(client.stream_frontier(job_a["job_id"], poll_timeout=2.0))
            events_b = list(client.stream_frontier(job_b["job_id"], poll_timeout=2.0))
            assert events_a and events_b
            assert all(e["run_id"].endswith("s0") for e in events_a)
            assert all(e["run_id"].endswith("s7") for e in events_b)
        finally:
            svc.stop()


# ---------------------------------------------------------------- CLI verbs
class TestServiceCLI:
    def test_submit_result_jobs_cancel(self, service, tmp_path, capsys):
        _, client = service
        server = client.base_url.removeprefix("http://")
        assert main([
            "submit", "--server", server, "--dataset", "phishing",
            "--objective", "accuracy", "--scale", "0.05",
            "--set", "population_size=4", "--set", "max_evaluations=6",
            "--set", "training_epochs=1",
            "--wait", "--timeout", "120",
        ]) == 0
        out = capsys.readouterr().out
        job_id = re.search(r"submitted job (\w+)", out).group(1)
        assert "result digest:" in out

        result_path = tmp_path / "result.json"
        assert main(["result", "--server", server, job_id, "--output", str(result_path)]) == 0
        payload = json.loads(result_path.read_text())
        assert payload["state"] == "done"

        assert main(["jobs", "--server", server]) == 0
        assert job_id in capsys.readouterr().out

        assert main(["cancel", "--server", server, job_id]) == 0
        assert "already done" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unreachable_server_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["jobs", "--server", "127.0.0.1:1"])


# ----------------------------------------------------------- crash recovery
def _start_server(data_dir: Path, log_path: Path) -> tuple[subprocess.Popen, str]:
    """Launch ``ecad serve`` on an ephemeral port; returns (process, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    log = open(log_path, "a")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--data-dir", str(data_dir), "--eval-workers", "2"],
        stdout=log, stderr=subprocess.STDOUT, env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        match = re.search(r"on http://([\d.]+:\d+)", log_path.read_text())
        if match:
            return process, match.group(1)
        if process.poll() is not None:
            break
        time.sleep(0.1)
    process.kill()
    raise AssertionError(f"server never came up:\n{log_path.read_text()}")


class TestCrashRecovery:
    def test_sigkill_mid_job_resumes_bit_identically(self, tmp_path):
        """Kill -9 the server mid-job; the restarted server must resume from the
        last RunArtifact checkpoint and produce the same result digest as an
        uninterrupted control run."""
        # Two cells so the first one's artifact is a mid-job checkpoint.
        spec_body = {
            "name": "crash-grid",
            "datasets": ["phishing"],
            "objectives": ["accuracy"],
            "seeds": [0, 1],
            "scale": 0.05,
            "overrides": {"population_size": 4, "max_evaluations": 6, "training_epochs": 1},
        }

        # Control: same spec through an uninterrupted in-process service.
        control = tiny_service(tmp_path / "control")
        host, port = control.start()
        try:
            control_client = ServiceClient(f"{host}:{port}")
            control_job = control_client.submit({"spec": spec_body})
            control_payload = control_client.wait(
                control_job["job_id"], poll_seconds=0.2, timeout=300
            )
        finally:
            control.stop()
        assert control_payload["state"] == "done"
        control_digest = control_payload["result"]["result_digest"]

        # Victim: a real server process, killed the moment cell 1 checkpoints.
        data_dir = tmp_path / "victim"
        log_path = tmp_path / "serve-1.log"
        log_path.touch()
        process, address = _start_server(data_dir, log_path)
        try:
            client = ServiceClient(address)
            job = client.submit({"spec": spec_body})
            deadline = time.monotonic() + 300
            while True:
                assert time.monotonic() < deadline, "first cell never completed"
                record = client.job(job["job_id"])
                if record["completed_cells"] >= 1:
                    break
                time.sleep(0.05)
            assert record["state"] == "running"
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

        # The restarted server finds the orphaned running job, re-queues it,
        # and resumes from the cell-1 checkpoint.
        log_path = tmp_path / "serve-2.log"
        log_path.touch()
        process, address = _start_server(data_dir, log_path)
        try:
            client = ServiceClient(address)
            payload = client.wait(job["job_id"], poll_seconds=0.2, timeout=300)
            assert payload["state"] == "done"
            assert payload["attempts"] >= 2  # claimed once per server lifetime
            # Cell 1's artifact was reused, not recomputed: its stage was
            # pre-recorded before the re-run started.
            assert payload["completed_cells"] == payload["total_cells"] == 2
            # Bit-identical resume: only timing differs from the control run.
            assert payload["result"]["result_digest"] == control_digest
            # The frontier log was deduplicated: one coherent trail per cell.
            events = client.frontier(job["job_id"], since=0, timeout=0.5)["events"]
            kept_cells = {event["run_id"] for event in events}
            assert kept_cells == {"phishing__accuracy__s0", "phishing__accuracy__s1"}
            sequences = [event["seq"] for event in events]
            assert sequences == sorted(sequences)
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()


# ------------------------------------------------------------ ServiceConfig
class TestServiceConfig:
    def test_round_trip_and_paths(self, tmp_path):
        config = ServiceConfig(port=9000, data_dir=str(tmp_path / "svc"))
        loaded = ServiceConfig.from_dict(config.to_dict())
        assert loaded == config
        assert loaded.resolved_queue_path == tmp_path / "svc" / "queue.sqlite"
        explicit = ServiceConfig(queue_path=str(tmp_path / "elsewhere.sqlite"))
        assert explicit.resolved_queue_path == tmp_path / "elsewhere.sqlite"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(port=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_concurrent_jobs=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig.from_dict({"bogus": 1})
