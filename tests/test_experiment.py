"""Unified experiment API: registries, specs, runner, CLI sweep/resume."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.core.config import ECADConfig
from repro.core.errors import ConfigurationError
from repro.core.fitness import FitnessObjective, register_objective
from repro.datasets.registry import DatasetEntry, dataset_entry, register_dataset
from repro.experiment import (
    ExperimentReport,
    ExperimentRunner,
    ExperimentSpec,
    Registry,
    RunArtifact,
    resume_experiment,
)
from repro.experiment.spec import objective_config_from_spec, objective_slug
from repro.hardware.device import FPGADevice, fpga_device, register_fpga_device
from repro.workers.backends import ThreadPoolBackend, register_backend, resolve_backend
from repro.workers.base import available_workers, resolve_worker

#: Tiny per-run settings shared by the end-to-end grid tests.
TINY_OVERRIDES = {
    "population_size": 4,
    "max_evaluations": 4,
    "training_epochs": 1,
    "num_folds": 2,
}


def tiny_spec(name: str, **kwargs) -> ExperimentSpec:
    defaults = dict(
        name=name,
        datasets=("credit-g", "phishing"),
        objectives=("accuracy", "codesign"),
        seeds=(0,),
        scale=0.05,
        overrides=dict(TINY_OVERRIDES),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestRegistryPrimitive:
    def test_register_resolve_aliases(self):
        registry = Registry("widget")
        registry.register("alpha", 1, aliases=("a", "first"))
        assert registry.resolve("alpha") == 1
        assert registry.resolve("a") == 1
        assert registry.resolve("FIRST") == 1  # normalization
        assert registry.canonical_name("a") == "alpha"
        assert "alpha" in registry and "a" in registry
        assert registry.available() == ["alpha"]

    def test_duplicate_rejected_unless_overwrite(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("alpha", 2)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("beta", 2, aliases=("alpha",))
        registry.register("alpha", 3, overwrite=True)
        assert registry.resolve("alpha") == 3

    def test_allow_rebind(self):
        registry = Registry("widget", allow_rebind=True)
        registry.register("alpha", 1)
        registry.register("alpha", 2)  # same canonical name: allowed
        assert registry.resolve("alpha") == 2
        with pytest.raises(ValueError):
            registry.register("beta", 3, aliases=("alpha",))  # different entry: still rejected

    def test_overwrite_updates_existing_aliases(self):
        registry = Registry("widget")
        registry.register("alpha", 1, aliases=("a", "al"))
        registry.register("alpha", 2, overwrite=True)
        # aliases from the earlier registration follow the new object
        assert registry.resolve("a") == 2
        assert registry.resolve("al") == 2
        rebindable = Registry("widget", allow_rebind=True)
        rebindable.register("beta", 1, aliases=("b",))
        rebindable.register("beta", 9)
        assert rebindable.resolve("b") == 9

    def test_unknown_lists_available(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        with pytest.raises(KeyError, match="unknown widget 'gamma'.*alpha"):
            registry.resolve("gamma")
        assert registry.get("gamma") is None

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("deco")
        def thing():
            return 42

        assert registry.resolve("deco") is thing

    def test_entries_and_len(self):
        registry = Registry("widget")
        registry.register("b", 2)
        registry.register("a", 1, aliases=("a_alias",))
        assert registry.entries() == {"a": 1, "b": 2}
        assert len(registry) == 2


class TestOpenRegistries:
    """User-defined entries usable by name without touching library code."""

    def test_custom_backend_registered_and_resolved(self):
        register_backend(
            "test_two_threads",
            lambda max_workers=2: ThreadPoolBackend(max_workers=2),
        )
        backend = resolve_backend("test_two_threads")
        assert isinstance(backend, ThreadPoolBackend)
        backend.shutdown()
        # the configuration layer accepts it by name immediately
        dataset_config = ECADConfig.template_for_dataset(
            dataset_entry("credit-g").load(scale=0.05), backend="test_two_threads"
        )
        assert dataset_config.backend == "test_two_threads"

    def test_custom_fpga_device_registered_and_resolved(self):
        device = FPGADevice(
            name="Test Board 1000",
            dsp_count=100,
            m20k_count=200,
            alm_count=10_000,
            clock_mhz=100.0,
        )
        register_fpga_device("test_board", device, aliases=("tb1000",))
        assert fpga_device("tb1000") is device

    def test_custom_objective_registered_and_usable(self):
        register_objective("test_neg_params", lambda e: -float(e.parameter_count))
        objective = FitnessObjective(name="test_neg_params", maximize=True)
        assert objective.name == "test_neg_params"

    def test_worker_types_registered(self):
        assert {"simulation", "hardware_db", "physical"} <= set(available_workers())
        from repro.workers.simulation import SimulationWorker

        assert resolve_worker("sim") is SimulationWorker

    def test_custom_dataset_registered(self):
        entry = dataset_entry("credit-g")
        register_dataset(
            DatasetEntry(
                name="test_credit_alias",
                factory=entry.factory,
                evaluation_protocol=entry.evaluation_protocol,
                paper_top_accuracy_any=0.0,
                paper_top_accuracy_mlp=0.0,
                paper_ecad_accuracy=0.0,
            )
        )
        assert dataset_entry("test-credit-alias").name == "test_credit_alias"


class TestObjectiveSpecs:
    def test_shorthands(self):
        accuracy = objective_config_from_spec("accuracy")
        assert accuracy.objectives == (("accuracy", 1.0, True),)
        codesign = objective_config_from_spec("codesign")
        assert ("fpga_throughput", 1.0, True) in codesign.objectives

    def test_compound_spec(self):
        config = objective_config_from_spec("accuracy+fpga_latency")
        assert config.objectives == (("accuracy", 1.0, True), ("fpga_latency", 1.0, False))

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            objective_config_from_spec("accuracy+nonsense")

    def test_registered_direction_is_respected(self):
        register_objective(
            "test_cost_metric", lambda e: float(e.parameter_count), maximize_by_default=False
        )
        config = objective_config_from_spec("accuracy+test_cost_metric")
        assert ("test_cost_metric", 1.0, False) in config.objectives

    def test_slug(self):
        assert objective_slug("accuracy+fpga_latency") == "accuracy-fpga_latency"


class TestExperimentSpec:
    def test_round_trip(self, tmp_path):
        spec = tiny_spec("round-trip", seeds=(0, 1), backend="threads", eval_parallelism=2)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_grid_cells(self):
        spec = tiny_spec("grid", seeds=(0, 1))
        cells = spec.cells()
        assert len(cells) == spec.grid_size == 2 * 2 * 2
        assert [cell.index for cell in cells] == list(range(8))
        assert cells[0].run_id == "credit_g__accuracy__s0"
        assert len({cell.run_id for cell in cells}) == len(cells)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one dataset"):
            tiny_spec("bad", datasets=())
        with pytest.raises(ConfigurationError, match="unknown objective"):
            tiny_spec("bad", objectives=("nonsense",))
        with pytest.raises(ConfigurationError, match="unknown backend"):
            tiny_spec("bad", backend="mpi")
        with pytest.raises(ConfigurationError, match="run_parallelism"):
            tiny_spec("bad", run_parallelism=0)

    def test_unknown_spec_key_rejected(self):
        data = tiny_spec("strict").to_dict()
        data["dataset"] = ["typo"]
        with pytest.raises(ConfigurationError, match="unknown experiment spec key"):
            ExperimentSpec.from_dict(data)

    def test_cell_digest_ignores_grid_axes(self):
        base = tiny_spec("digest")
        wider = tiny_spec("digest-wider", datasets=("credit-g",), seeds=(0, 1, 2))
        assert base.cell_digest() == wider.cell_digest()
        deeper = tiny_spec(
            "digest", overrides={**TINY_OVERRIDES, "training_epochs": 3}
        )
        assert base.cell_digest() != deeper.cell_digest()

    def test_cell_digest_backward_compatible_at_strategy_defaults(self):
        """Regression: pre-strategy checkpoints must survive the upgrade.

        The digest of a spec at default strategy/constraints must equal the
        digest computed before those fields existed, so previously completed
        artifacts are still resumable; non-default values must change it.
        """
        import hashlib
        import json

        base = tiny_spec("digest")
        legacy = base.to_dict()
        for key in ("name", "datasets", "objectives", "seeds", "run_parallelism", "output_dir"):
            legacy.pop(key, None)
        legacy.pop("strategy", None)
        legacy.pop("constraints", None)
        # Store fields post-date the first release too: a legacy spec dict
        # never carried them, and at their defaults they must not change
        # the digest.
        legacy.pop("store_path", None)
        legacy.pop("warm_start", None)
        legacy_digest = hashlib.sha256(
            json.dumps(legacy, sort_keys=True).encode()
        ).hexdigest()[:16]
        assert base.cell_digest() == legacy_digest
        assert tiny_spec("digest", strategy="nsga2").cell_digest() != base.cell_digest()
        # The store location is purely organizational: it must never
        # invalidate completed cells, while enabling warm-start must.
        assert (
            tiny_spec("digest", store_path="some/store.sqlite").cell_digest()
            == base.cell_digest()
        )
        assert tiny_spec("digest", warm_start=4).cell_digest() != base.cell_digest()
        assert (
            tiny_spec("digest", constraints=("dsp_usage<=512",)).cell_digest()
            != base.cell_digest()
        )


class TestExperimentRunner:
    def test_full_grid_artifacts_and_report(self, tmp_path):
        spec = tiny_spec("runner")
        runner = ExperimentRunner(spec, output_dir=tmp_path / "exp")
        report = runner.run()
        assert isinstance(report, ExperimentReport)
        assert len(report.artifacts) == 4
        assert not report.failed
        assert all(0 <= artifact.best_accuracy <= 1 for artifact in report.artifacts)
        # per-run artifacts + aggregate JSON/CSV on disk
        for cell in spec.cells():
            assert (tmp_path / "exp" / "runs" / f"{cell.run_id}.json").exists()
        csv_lines = (tmp_path / "exp" / "report.csv").read_text().splitlines()
        assert csv_lines[0].startswith("run_id,dataset,objective,seed,status,best_accuracy")
        assert len(csv_lines) == 5
        assert report.best_artifact().best_accuracy == max(
            artifact.best_accuracy for artifact in report.artifacts
        )

    def test_resume_skips_completed_cells(self, tmp_path):
        spec = tiny_spec("resume")
        out = tmp_path / "exp"
        ExperimentRunner(spec, output_dir=out).run()
        mtimes = {
            path.name: path.stat().st_mtime_ns for path in (out / "runs").iterdir()
        }
        report = resume_experiment(out)
        assert len(report.artifacts) == 4
        after = {path.name: path.stat().st_mtime_ns for path in (out / "runs").iterdir()}
        assert after == mtimes  # nothing re-ran, nothing rewritten

    def test_resume_reruns_failed_and_stale_cells(self, tmp_path):
        spec = tiny_spec("stale")
        out = tmp_path / "exp"
        runner = ExperimentRunner(spec, output_dir=out)
        cells = spec.cells()
        # a failed artifact and one from different per-run settings are both re-run
        RunArtifact.from_failure(cells[0], "boom", 0.0, cell_digest=spec.cell_digest()).save(
            runner.artifact_path(cells[0])
        )
        good = RunArtifact.from_failure(cells[1], "", 0.0, cell_digest="0123456789abcdef")
        good.status = "completed"
        good.save(runner.artifact_path(cells[1]))
        plan = {row["run_id"]: row["status"] for row in runner.plan()}
        assert plan[cells[0].run_id] == "pending"
        assert plan[cells[1].run_id] == "pending"
        report = runner.run()
        assert not report.failed

    def test_partial_checkpoint_resumes_remaining(self, tmp_path):
        spec = tiny_spec("partial")
        out = tmp_path / "exp"
        runner = ExperimentRunner(spec, output_dir=out)
        cells = spec.cells()
        # pre-complete one cell with a recognizable marker artifact
        marker = RunArtifact(
            run_id=cells[2].run_id,
            dataset=cells[2].dataset,
            objective=cells[2].objective,
            seed=cells[2].seed,
            best_accuracy=0.123456,
            cell_digest=spec.cell_digest(),
        )
        marker.save(runner.artifact_path(cells[2]))
        report = runner.run()
        by_id = {artifact.run_id: artifact for artifact in report.artifacts}
        assert by_id[cells[2].run_id].best_accuracy == pytest.approx(0.123456)
        assert all(artifact.completed for artifact in report.artifacts)

    def test_plan_without_resume_reports_everything_pending(self, tmp_path):
        spec = tiny_spec("plan-no-resume", datasets=("credit-g",), objectives=("accuracy",))
        out = tmp_path / "exp"
        runner = ExperimentRunner(spec, output_dir=out)
        runner.run()
        assert all(row["status"] == "completed" for row in runner.plan())
        assert all(row["status"] == "pending" for row in runner.plan(resume=False))

    def test_run_parallelism_fans_cells_out(self, tmp_path):
        spec = tiny_spec("parallel", run_parallelism=3)
        report = ExperimentRunner(spec, output_dir=tmp_path / "exp").run()
        assert len(report.artifacts) == 4
        assert not report.failed

    def test_failed_cell_is_reported_not_raised(self, tmp_path):
        spec = tiny_spec(
            "failing",
            datasets=("credit-g", "no-such-dataset"),
            objectives=("accuracy",),
        )
        report = ExperimentRunner(spec, output_dir=tmp_path / "exp").run()
        assert len(report.failed) == 1
        assert "no-such-dataset" in report.failed[0].error or "unknown dataset" in report.failed[0].error

    def test_resume_requires_checkpoint(self, tmp_path):
        with pytest.raises(ConfigurationError, match="spec.json"):
            resume_experiment(tmp_path / "empty")


class TestCLISweep:
    def _write_spec(self, tmp_path, name="cli"):
        spec = tiny_spec(name)
        path = tmp_path / "spec.json"
        spec.save(path)
        return spec, path

    def test_dry_run_plan(self, tmp_path, capsys):
        _, path = self._write_spec(tmp_path)
        code = main(["sweep", "--spec", str(path), "--output-dir", str(tmp_path / "out"), "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cell(s) to run" in out
        assert "credit_g__accuracy__s0" in out
        assert not (tmp_path / "out" / "runs").exists()  # nothing executed

    def test_sweep_and_resume_end_to_end(self, tmp_path, capsys):
        _, path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", "--spec", str(path), "--output-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "report.csv" in out
        artifacts = sorted(os.listdir(out_dir / "runs"))
        assert len(artifacts) == 4
        payload = json.loads((out_dir / "report.json").read_text())
        assert len(payload["artifacts"]) == 4

        # resume skips every completed cell
        assert main(["resume", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("skipping") == 4

    def test_registry_commands(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "threads" in out and "simulation" in out
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Arria 10 GX 1150" in out and "NVIDIA Titan X" in out

    def test_datasets_table_shows_protocol_and_accuracies(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "credit_g_like" in out
        assert "10-fold" in out and "1-fold" in out
        assert "0.788" in out  # paper's ECAD Credit-g accuracy
        assert "paper_ecad" in out

    def test_sweep_missing_spec_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--spec", str(tmp_path / "none.json")])


class TestCustomEntriesEndToEnd:
    """A user-defined backend + device + objective drive a grid by name."""

    def test_custom_registrations_used_by_experiment(self, tmp_path):
        register_backend(
            "test_e2e_threads",
            lambda max_workers=2: ThreadPoolBackend(max_workers=max_workers),
        )
        register_fpga_device(
            "test_e2e_board",
            FPGADevice(
                name="E2E Board",
                dsp_count=512,
                m20k_count=1024,
                alm_count=100_000,
                clock_mhz=200.0,
            ),
        )
        register_objective("test_e2e_small", lambda e: -float(e.parameter_count))
        spec = tiny_spec(
            "custom-e2e",
            datasets=("credit-g",),
            objectives=("accuracy+test_e2e_small",),
            backend="test_e2e_threads",
            eval_parallelism=2,
            fpga="test_e2e_board",
        )
        report = ExperimentRunner(spec, output_dir=tmp_path / "exp").run()
        assert not report.failed
        artifact = report.artifacts[0]
        assert artifact.completed
        assert artifact.objective == "accuracy+test_e2e_small"
