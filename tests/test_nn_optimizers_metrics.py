"""Unit tests for repro.nn.optimizers and repro.nn.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    error_rate,
    macro_f1,
    precision_recall_f1,
    top_k_accuracy,
)
from repro.nn.optimizers import SGD, Adam, MomentumSGD, RMSProp, available_optimizers, get_optimizer


def quadratic_loss_and_grad(params: list[np.ndarray]) -> tuple[float, list[np.ndarray]]:
    """Simple convex objective sum((p - 3)^2) with its gradient."""
    loss = sum(float(np.sum((p - 3.0) ** 2)) for p in params)
    grads = [2.0 * (p - 3.0) for p in params]
    return loss, grads


class TestOptimizers:
    @pytest.mark.parametrize("name", ["sgd", "momentum", "rmsprop", "adam"])
    def test_converges_on_quadratic(self, name):
        params = [np.zeros((3, 2)), np.zeros(4)]
        optimizer = get_optimizer(name, learning_rate=0.1)
        for _ in range(500):
            _, grads = quadratic_loss_and_grad(params)
            optimizer.step(params, grads)
        final_loss, _ = quadratic_loss_and_grad(params)
        assert final_loss < 1e-2

    def test_sgd_update_rule(self):
        params = [np.array([1.0, 2.0])]
        SGD(learning_rate=0.5).step(params, [np.array([2.0, 4.0])])
        np.testing.assert_allclose(params[0], [0.0, 0.0])

    def test_step_count_increments(self):
        optimizer = Adam()
        params = [np.zeros(2)]
        for expected in range(1, 4):
            optimizer.step(params, [np.ones(2)])
            assert optimizer.step_count == expected

    def test_reset_clears_state(self):
        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.9)
        params = [np.zeros(2)]
        optimizer.step(params, [np.ones(2)])
        optimizer.reset()
        assert optimizer.step_count == 0
        assert optimizer._velocities == {}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [np.zeros(3)])

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ValueError):
            RMSProp(decay=1.5)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)

    def test_registry(self):
        assert set(available_optimizers()) == {"sgd", "momentum", "rmsprop", "adam"}
        instance = Adam()
        assert get_optimizer(instance) is instance
        with pytest.raises(ValueError):
            get_optimizer(instance, learning_rate=0.1)
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")

    def test_adam_bias_correction_first_step_magnitude(self):
        """On the first step Adam moves by roughly the learning rate."""
        params = [np.array([0.0])]
        Adam(learning_rate=0.001).step(params, [np.array([10.0])])
        assert params[0][0] == pytest.approx(-0.001, rel=1e-3)


class TestMetrics:
    def test_accuracy_with_labels(self):
        assert accuracy(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0])) == 0.75

    def test_accuracy_with_probability_matrix(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(probs, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_error_rate_complements_accuracy(self):
        predictions = np.array([0, 1, 2, 2])
        targets = np.array([0, 1, 1, 2])
        assert error_rate(predictions, targets) == pytest.approx(1 - accuracy(predictions, targets))

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_top_k_accuracy(self):
        probs = np.array(
            [
                [0.5, 0.3, 0.2],
                [0.1, 0.2, 0.7],
                [0.4, 0.35, 0.25],
            ]
        )
        targets = np.array([1, 2, 2])
        assert top_k_accuracy(probs, targets, k=1) == pytest.approx(1 / 3)
        assert top_k_accuracy(probs, targets, k=2) == pytest.approx(2 / 3)
        assert top_k_accuracy(probs, targets, k=3) == 1.0

    def test_confusion_matrix_counts(self):
        predictions = np.array([0, 1, 1, 2, 2, 2])
        targets = np.array([0, 1, 2, 2, 2, 0])
        matrix = confusion_matrix(predictions, targets, num_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 2
        assert matrix[0, 2] == 1
        assert matrix.sum() == 6

    def test_precision_recall_f1_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        scores = precision_recall_f1(labels, labels, num_classes=3)
        np.testing.assert_allclose(scores["precision"], 1.0)
        np.testing.assert_allclose(scores["recall"], 1.0)
        np.testing.assert_allclose(scores["f1"], 1.0)
        assert macro_f1(labels, labels, num_classes=3) == 1.0

    def test_precision_handles_missing_predictions(self):
        predictions = np.array([0, 0, 0])
        targets = np.array([0, 1, 2])
        scores = precision_recall_f1(predictions, targets, num_classes=3)
        assert scores["precision"][1] == 0.0
        assert scores["recall"][0] == 1.0
