"""ECADConfig persistence: JSON round-trips, strict parsing, CLI precedence."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, resolve_run_config
from repro.core.config import (
    ECADConfig,
    OptimizationTargetConfig,
    parse_override,
    parse_override_value,
)
from repro.core.errors import ConfigurationError
from repro.datasets.registry import load_dataset


@pytest.fixture
def config() -> ECADConfig:
    dataset = load_dataset("credit-g", seed=0, scale=0.05)
    return ECADConfig.template_for_dataset(
        dataset,
        optimization=OptimizationTargetConfig.accuracy_and_throughput(),
        population_size=4,
        max_evaluations=8,
        training_epochs=2,
        seed=3,
    )


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self, config):
        assert ECADConfig.from_dict(config.to_dict()) == config

    def test_save_load_identity(self, config, tmp_path):
        path = tmp_path / "nested" / "config.json"
        config.save(path)
        assert ECADConfig.load(path) == config

    def test_saved_file_is_plain_json(self, config, tmp_path):
        path = tmp_path / "config.json"
        config.save(path)
        data = json.loads(path.read_text())
        assert data["dataset_name"] == config.dataset_name
        assert data["nna"]["input_size"] == config.nna.input_size

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            ECADConfig.load(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ECADConfig.load(path)


class TestStrictParsing:
    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError, match="expected an object"):
            ECADConfig.from_dict([1, 2, 3])

    def test_missing_nna_rejected(self, config):
        data = config.to_dict()
        del data["nna"]
        with pytest.raises(ConfigurationError, match="malformed"):
            ECADConfig.from_dict(data)

    def test_missing_required_fields_rejected(self, config):
        with pytest.raises(ConfigurationError, match="malformed"):
            ECADConfig.from_dict({"dataset_name": "x", "nna": {"input_size": 4}})
        data = config.to_dict()
        del data["dataset_name"]
        with pytest.raises(ConfigurationError, match="dataset_name"):
            ECADConfig.from_dict(data)

    def test_unknown_top_level_key_rejected(self, config):
        data = config.to_dict()
        data["populationsize"] = 8  # typo for population_size
        with pytest.raises(ConfigurationError, match="unknown configuration key"):
            ECADConfig.from_dict(data)

    def test_unknown_section_key_rejected(self, config):
        data = config.to_dict()
        data["nna"]["maxlayers"] = 6
        with pytest.raises(ConfigurationError, match="unknown nna key"):
            ECADConfig.from_dict(data)
        data = config.to_dict()
        data["hardware"]["fgpa"] = "arria10"
        with pytest.raises(ConfigurationError, match="unknown hardware key"):
            ECADConfig.from_dict(data)

    def test_malformed_objectives_rejected(self, config):
        data = config.to_dict()
        data["optimization"]["objectives"] = [["accuracy", 1.0]]  # missing maximize
        with pytest.raises(ConfigurationError, match="triples"):
            ECADConfig.from_dict(data)

    def test_unregistered_backend_rejected(self, config):
        data = config.to_dict()
        data["backend"] = "mpi"
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ECADConfig.from_dict(data)


class TestOverrides:
    def test_parse_override_value_types(self):
        assert parse_override_value("3") == 3
        assert parse_override_value("0.5") == 0.5
        assert parse_override_value("true") is True
        assert parse_override_value("[1, 2]") == [1, 2]
        assert parse_override_value("stratix10") == "stratix10"

    def test_parse_override_requires_equals(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_override("population_size")
        assert parse_override("a.b=7") == ("a.b", 7)

    def test_with_overrides_strings(self, config):
        updated = config.with_overrides(
            ["backend=threads", "eval_parallelism=4", "nna.max_layers=2", "hardware.fpga=stratix10"]
        )
        assert updated.backend == "threads"
        assert updated.eval_parallelism == 4
        assert updated.nna.max_layers == 2
        assert updated.hardware.fpga == "stratix10"
        # the original is untouched (frozen dataclasses)
        assert config.backend == "serial"

    def test_with_overrides_mapping(self, config):
        updated = config.with_overrides({"training_epochs": 5, "nna.min_layers": 2})
        assert updated.training_epochs == 5
        assert updated.nna.min_layers == 2

    def test_with_overrides_unknown_key_rejected(self, config):
        with pytest.raises(ConfigurationError, match="unknown configuration key"):
            config.with_overrides(["no_such_field=1"])
        with pytest.raises(ConfigurationError, match="no section"):
            config.with_overrides(["nope.deep=1"])

    def test_with_overrides_revalidates(self, config):
        with pytest.raises(ConfigurationError):
            config.with_overrides(["eval_parallelism=0"])

    def test_nsga2_tournament_size_round_trip(self, config):
        assert config.nsga2_tournament_size == 2  # classic binary default
        updated = config.with_overrides(["nsga2_tournament_size=3"])
        assert updated.nsga2_tournament_size == 3
        assert updated.to_engine_config().nsga2_tournament_size == 3
        reloaded = type(config).from_dict(updated.to_dict())
        assert reloaded.nsga2_tournament_size == 3
        with pytest.raises(ConfigurationError, match="nsga2_tournament_size"):
            config.with_overrides(["nsga2_tournament_size=1"])


class TestCLIPrecedence:
    """--set beats explicit flags beats the configuration file."""

    def _args(self, argv):
        return build_parser().parse_args(argv)

    def test_flags_beat_config_file(self, config, tmp_path):
        path = tmp_path / "config.json"
        config.save(path)
        args = self._args(
            ["run", "--dataset", "credit-g", "--scale", "0.05",
             "--config", str(path), "--backend", "threads", "--eval-workers", "3"]
        )
        _, resolved = resolve_run_config(args)
        assert resolved.backend == "threads"
        assert resolved.eval_parallelism == 3
        # everything else still comes from the file
        assert resolved.population_size == config.population_size

    def test_set_beats_flags(self, config, tmp_path):
        path = tmp_path / "config.json"
        config.save(path)
        args = self._args(
            ["run", "--dataset", "credit-g", "--scale", "0.05",
             "--config", str(path), "--backend", "threads",
             "--set", "backend=processes", "--set", "population_size=6"]
        )
        _, resolved = resolve_run_config(args)
        assert resolved.backend == "processes"
        assert resolved.population_size == 6

    def test_config_file_wins_over_template_defaults(self, config, tmp_path):
        path = tmp_path / "config.json"
        config.save(path)
        args = self._args(
            ["run", "--dataset", "credit-g", "--scale", "0.05",
             "--config", str(path), "--population", "99"]
        )
        _, resolved = resolve_run_config(args)
        # --population only feeds the generated template; a config file wins.
        assert resolved.population_size == config.population_size

    def test_eval_workers_validation(self, config, tmp_path):
        args = self._args(
            ["run", "--dataset", "credit-g", "--scale", "0.05", "--eval-workers", "0"]
        )
        with pytest.raises(SystemExit):
            resolve_run_config(args)

    def test_eval_batch_flag_and_validation(self, config, tmp_path):
        path = tmp_path / "config.json"
        config.save(path)
        args = self._args(
            ["run", "--dataset", "credit-g", "--scale", "0.05",
             "--config", str(path), "--eval-batch", "8"]
        )
        _, resolved = resolve_run_config(args)
        assert resolved.eval_batch_size == 8
        assert resolved.to_engine_config().eval_batch_size == 8
        args = self._args(
            ["run", "--dataset", "credit-g", "--scale", "0.05", "--eval-batch", "0"]
        )
        with pytest.raises(SystemExit):
            resolve_run_config(args)

    def test_eval_batch_size_roundtrip_and_validation(self, config):
        updated = config.with_overrides(["eval_batch_size=4"])
        assert updated.eval_batch_size == 4
        assert ECADConfig.from_dict(updated.to_dict()).eval_batch_size == 4
        with pytest.raises(ConfigurationError, match="eval_batch_size"):
            config.with_overrides(["eval_batch_size=0"])
