"""Arena subsystem tests: scenario packs, tournaments, leaderboard, CLI.

The cross-strategy invariant suite runs one tiny tournament (every registered
strategy on one scenario, fixed seed) through the real engine and asserts the
properties every strategy must share: the run completes, the streamed
frontier is mutually non-dominated, hypervolume is finite and bit-identical
for a fixed seed, and the run statistics are self-consistent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.reporting import rows_to_csv
from repro.core.errors import ConfigurationError, ServiceError
from repro.core.strategy import STRATEGIES, arena_strategies, get_strategy
from repro.experiment.artifacts import RunArtifact
from repro.experiment.spec import objective_config_from_spec, split_objective_spec
from repro.scenarios import (
    LEADERBOARD_COLUMNS,
    ArenaConfig,
    ArenaRunner,
    Leaderboard,
    ScenarioPack,
    artifact_metrics,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.workers.backends import resolve_backend

# Snapshot before any test registers helper strategies (the registry has no
# unregister, so tests that add strategies would otherwise leak into the
# expected competitor set).
COMPETITORS = tuple(sorted(arena_strategies()))

# One deliberately tiny pack shared by every tournament test in this module:
# a real co-design search (two objectives, real training) at the smallest
# budget that still produces a non-trivial frontier.
TINY_PACK = register_scenario(
    ScenarioPack(
        name="tiny-test-arena",
        description="minimal co-design scenario for the test suite",
        datasets=("credit_g_like",),
        objective="codesign",
        scale=0.05,
        population_size=4,
        max_evaluations=6,
        training_epochs=1,
        target_accuracy=0.5,
    ),
    overwrite=True,
)


@pytest.fixture(scope="module")
def tournament(tmp_path_factory):
    """One full tournament: every registered strategy × tiny pack × seed 0."""
    output_dir = tmp_path_factory.mktemp("arena")
    config = ArenaConfig(
        scenarios=("tiny-test-arena",),
        seeds=(0,),
        output_dir=str(output_dir),
    )
    rows = ArenaRunner(config).run()
    artifacts = {}
    runs_dir = Path(output_dir) / "scenarios" / "tiny_test_arena" / "runs"
    for path in sorted(runs_dir.glob("*.json")):
        artifact = RunArtifact.load(path)
        strategy, _ = split_objective_spec(artifact.objective)
        artifacts[strategy] = artifact
    return config, rows, artifacts


# --------------------------------------------------------- scenario catalog
class TestScenarioPacks:
    def test_at_least_three_builtin_packs(self):
        names = available_scenarios()
        for name in ("edge-tiny-dsp", "datacenter-throughput", "noisy-labels"):
            assert name in names

    def test_builtin_packs_validate_and_lower_to_specs(self):
        for name in ("edge-tiny-dsp", "datacenter-throughput", "noisy-labels"):
            pack = get_scenario(name)
            spec = pack.to_spec(("nsga2", "random"), seeds=(0, 1))
            assert spec.objectives == (f"nsga2:{pack.objective}", f"random:{pack.objective}")
            assert spec.grid_size == len(pack.datasets) * 2 * 2
            assert spec.overrides["max_evaluations"] == pack.max_evaluations
            assert spec.constraints == pack.constraints

    def test_strategy_aliases_canonicalize_and_dedup(self):
        pack = get_scenario("tiny-test-arena")
        spec = pack.to_spec(("weighted_sum", "evolutionary", "default"))
        assert spec.objectives == ("evolutionary:codesign",)

    def test_unknown_dataset_rejected_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            ScenarioPack(
                name="bad", description="x", datasets=("credit_g_lik",)
            )

    def test_budget_and_target_validation(self):
        with pytest.raises(ConfigurationError, match="max_evaluations"):
            ScenarioPack(
                name="bad", description="x", datasets=("credit_g_like",), max_evaluations=0
            )
        with pytest.raises(ConfigurationError, match="target_accuracy"):
            ScenarioPack(
                name="bad", description="x", datasets=("credit_g_like",), target_accuracy=1.5
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(TINY_PACK)

    def test_unknown_scenario_suggests_near_miss(self):
        with pytest.raises(ConfigurationError, match=r"did you mean edge-tiny-dsp"):
            get_scenario("edge tiny dps")


# ------------------------------------------------- registry near-miss fixes
class TestRegistrySuggestions:
    """Satellite: unknown-name errors suggest near misses on all registries."""

    def test_datasets(self):
        from repro.datasets.registry import DATASETS

        with pytest.raises(KeyError, match=r"did you mean mnist_like"):
            DATASETS.resolve("mnist_lik")

    def test_strategies(self):
        with pytest.raises(ConfigurationError, match=r"did you mean nsga2"):
            get_strategy("nsga II")

    def test_fpga_devices(self):
        from repro.hardware.device import FPGA_DEVICES

        with pytest.raises(KeyError, match=r"did you mean arria10"):
            FPGA_DEVICES.resolve("aria10")

    def test_gpu_devices(self):
        from repro.hardware.device import GPU_DEVICES

        with pytest.raises(KeyError, match=r"did you mean titan_x"):
            GPU_DEVICES.resolve("titan_xp")

    def test_backends(self):
        with pytest.raises(ValueError, match=r"did you mean serial"):
            resolve_backend("serail")

    def test_no_suggestion_when_nothing_is_close(self):
        from repro.datasets.registry import DATASETS

        with pytest.raises(KeyError) as excinfo:
            DATASETS.resolve("zzzzzzzz")
        assert "did you mean" not in str(excinfo.value)
        assert "available:" in str(excinfo.value)

    def test_alias_keys_participate_in_matching(self):
        # "thread-pool" normalizes to "thread_pool", an alias of "threads".
        with pytest.raises(ValueError, match=r"did you mean threads"):
            resolve_backend("thread-poool")


# ------------------------------------------------------------- leaderboard
class TestLeaderboard:
    def test_upsert_and_tie_stable_ordering(self, tmp_path):
        path = tmp_path / "lb.sqlite"
        with Leaderboard(path) as board:
            # Insert out of order, with a hypervolume tie inside a scenario.
            board.record("random", "s1", 1, hypervolume=0.5)
            board.record("evolutionary", "s1", 0, hypervolume=0.5)
            board.record("nsga2", "s1", 0, hypervolume=0.9)
            board.record("nsga2", "s0", 0, hypervolume=0.1)
            board.record("random", "s1", 0, hypervolume=0.5)
            order = [(r["scenario"], r["strategy"], r["seed"]) for r in board.rows()]
        assert order == [
            ("s0", "nsga2", 0),
            ("s1", "nsga2", 0),
            ("s1", "evolutionary", 0),
            ("s1", "random", 0),
            ("s1", "random", 1),
        ]

    def test_primary_key_replaces_in_place(self, tmp_path):
        with Leaderboard(tmp_path / "lb.sqlite") as board:
            board.record("nsga2", "s0", 0, hypervolume=0.1)
            board.record("nsga2", "s0", 0, hypervolume=0.7, real_evals=12)
            assert len(board) == 1
            row = board.rows()[0]
        assert row["hypervolume"] == 0.7
        assert row["real_evals"] == 12

    def test_survives_process_style_reopen(self, tmp_path):
        path = tmp_path / "lb.sqlite"
        with Leaderboard(path) as board:
            board.record("nsga2", "s0", 0, hypervolume=0.42, status="completed")
        with Leaderboard(path) as board:
            rows = board.rows()
        assert rows == [
            {
                "scenario": "s0",
                "strategy": "nsga2",
                "seed": 0,
                "hypervolume": 0.42,
                "evals_to_target": 0,
                "real_evals": 0,
                "wall_clock_seconds": 0.0,
                "best_accuracy": 0.0,
                "frontier_size": 0,
                "status": "completed",
                "run_id": "",
            }
        ]


# ------------------------------------------------------------ arena config
class TestArenaConfig:
    def test_round_trip(self):
        config = ArenaConfig(
            scenarios=("edge-tiny-dsp",),
            strategies=("nsga2", "random"),
            seeds=(0, 1),
            output_dir="out",
            warm_start=4,
            backend="threads",
            eval_parallelism=2,
        )
        assert ArenaConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown arena config key"):
            ArenaConfig.from_dict({"scenarios": [], "bogus": 1})

    def test_overrides_accept_optional_arena_prefix(self):
        config = ArenaConfig().with_overrides(
            ["arena.seeds=[0,1,2]", "warm_start=4", 'arena.backend="threads"']
        )
        assert config.seeds == (0, 1, 2)
        assert config.warm_start == 4
        assert config.backend == "threads"

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown arena config key"):
            ArenaConfig().with_overrides(["arena.bogus=1"])

    def test_derived_paths_live_under_output_dir(self):
        config = ArenaConfig(output_dir="t")
        assert config.resolved_store_path == str(Path("t") / "store.sqlite")
        assert config.resolved_leaderboard_path == str(Path("t") / "leaderboard.sqlite")
        explicit = ArenaConfig(output_dir="t", store_path="s.sqlite", leaderboard_path="l.sqlite")
        assert explicit.resolved_store_path == "s.sqlite"
        assert explicit.resolved_leaderboard_path == "l.sqlite"

    def test_resolved_strategies_default_to_arena_eligible(self):
        assert ArenaConfig().resolved_strategies() == tuple(arena_strategies())
        with pytest.raises(ConfigurationError, match="did you mean"):
            ArenaConfig(strategies=("nsga II",)).resolved_strategies()

    def test_arena_eligible_opt_out_is_honoured(self):
        from repro.core.strategy import SearchStrategy, register_strategy

        class HiddenStrategy(SearchStrategy):
            name = "hidden_baseline"
            arena_eligible = False

        register_strategy("hidden_baseline", HiddenStrategy, overwrite=True)
        try:
            assert "hidden_baseline" in STRATEGIES.available()
            assert "hidden_baseline" not in arena_strategies()
        finally:
            # The registry has no unregister; rebinding to an eligible class
            # would change global state, so just assert and leave it hidden.
            pass


# ---------------------------------------------- cross-strategy invariants
def _canonical_points(artifact, pack):
    objectives = objective_config_from_spec(
        pack.objective, constraints=pack.constraints
    ).to_fitness_objectives()
    points = []
    for row in artifact.frontier:
        points.append(
            tuple(
                float(row[spec.name]) if spec.maximize else -float(row[spec.name])
                for spec in objectives
            )
        )
    return points


class TestCrossStrategyInvariants:
    """Every registered strategy must satisfy the same run contract."""

    def test_every_registered_strategy_competed(self, tournament):
        _, rows, artifacts = tournament
        assert set(artifacts) == set(COMPETITORS)
        assert {row["strategy"] for row in rows} == set(COMPETITORS)

    @pytest.mark.parametrize("strategy", COMPETITORS)
    def test_run_completes(self, tournament, strategy):
        _, _, artifacts = tournament
        artifact = artifacts[strategy]
        assert artifact.status == "completed"
        assert artifact.error == ""
        assert artifact.best_accuracy > 0

    @pytest.mark.parametrize("strategy", COMPETITORS)
    def test_frontier_is_mutually_non_dominated(self, tournament, strategy):
        from repro.core.pareto import dominates

        _, _, artifacts = tournament
        points = _canonical_points(artifacts[strategy], TINY_PACK)
        assert points, "every completed run must archive a non-empty frontier"
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                if i != j:
                    assert not dominates(a, b)

    @pytest.mark.parametrize("strategy", COMPETITORS)
    def test_hypervolume_finite_and_consistent_with_artifact(self, tournament, strategy):
        import math

        _, rows, artifacts = tournament
        metrics = artifact_metrics(artifacts[strategy], TINY_PACK)
        assert math.isfinite(metrics["hypervolume"])
        assert metrics["hypervolume"] >= 0
        row = next(r for r in rows if r["strategy"] == strategy)
        assert row["hypervolume"] == metrics["hypervolume"]

    @pytest.mark.parametrize("strategy", COMPETITORS)
    def test_run_statistics_self_consistent(self, tournament, strategy):
        _, _, artifacts = tournament
        stats = artifacts[strategy].statistics
        # Every generated candidate is either freshly evaluated, answered by
        # the cache (store hits included), or saved by the surrogate screen.
        assert stats["models_generated"] == (
            stats["models_evaluated"] + stats["cache_hits"] + stats["real_evals_saved"]
        )
        # Store-backed runs: every store miss fell through to a fresh
        # evaluation, and every store hit was served through the cache.
        assert stats["store_misses"] == stats["models_evaluated"]
        assert stats["store_hits"] <= stats["cache_hits"]
        assert stats["frontier_size"] == len(artifacts[strategy].frontier)

    @pytest.mark.parametrize("strategy", COMPETITORS)
    def test_snapshots_track_monotone_best_accuracy(self, tournament, strategy):
        _, _, artifacts = tournament
        snapshots = artifacts[strategy].snapshots
        assert snapshots, "a non-empty frontier implies at least one snapshot"
        best = [s["best_accuracy"] for s in snapshots]
        assert best == sorted(best)
        seen = [s["evaluations_seen"] for s in snapshots]
        assert seen == sorted(seen)
        assert artifacts[strategy].best_accuracy >= best[-1] - 1e-12

    def test_hypervolume_bit_identical_for_fixed_seed(self, tournament, tmp_path):
        """A warm-store re-run in a fresh directory reproduces the search
        results exactly: identical hypervolume, accuracy and frontier size
        (only the cost columns — real evals, wall clock — may differ)."""
        config, rows, _ = tournament
        rerun_config = ArenaConfig(
            scenarios=("tiny-test-arena",),
            strategies=("nsga2", "random"),
            seeds=(0,),
            output_dir=str(tmp_path / "rerun"),
            store_path=config.resolved_store_path,
        )
        rerun_rows = ArenaRunner(rerun_config).run()
        for strategy in ("nsga2", "random"):
            first = next(r for r in rows if r["strategy"] == strategy)
            second = next(r for r in rerun_rows if r["strategy"] == strategy)
            assert second["hypervolume"] == first["hypervolume"]
            assert second["best_accuracy"] == first["best_accuracy"]
            assert second["frontier_size"] == first["frontier_size"]
            assert second["evals_to_target"] == first["evals_to_target"]


# ------------------------------------------------- leaderboard determinism
class TestLeaderboardDeterminism:
    def test_resumed_tournament_exports_byte_identical_csv(self, tournament):
        """Satellite: two arena runs, same seed + warm store (the second
        resumes from the first's checkpoints) → byte-identical CSV."""
        config, rows, _ = tournament
        first_csv = rows_to_csv(rows, columns=list(LEADERBOARD_COLUMNS))
        second_rows = ArenaRunner(config).run()
        second_csv = rows_to_csv(second_rows, columns=list(LEADERBOARD_COLUMNS))
        assert second_csv == first_csv
        assert first_csv.count("\n") == len(COMPETITORS) + 1

    def test_evals_to_target_from_snapshots(self):
        artifact = RunArtifact(
            run_id="r",
            dataset="d",
            objective="nsga2:codesign",
            seed=0,
            frontier=[{"accuracy": 0.8, "fpga_throughput": 10.0}],
            snapshots=[
                {"step": 0, "size": 1, "evaluations_seen": 1, "best_accuracy": 0.3},
                {"step": 4, "size": 1, "evaluations_seen": 5, "best_accuracy": 0.62},
                {"step": 7, "size": 2, "evaluations_seen": 8, "best_accuracy": 0.8},
            ],
            statistics={"models_evaluated": 9},
            wall_clock_seconds=1.5,
            best_accuracy=0.8,
        )
        pack = ScenarioPack(
            name="unregistered-metrics-pack",
            description="x",
            datasets=("credit_g_like",),
            target_accuracy=0.6,
        )
        metrics = artifact_metrics(artifact, pack)
        assert metrics["evals_to_target"] == 5
        assert metrics["real_evals"] == 9
        assert metrics["hypervolume"] == pytest.approx(0.8 * 10.0)
        # Target never reached -> 0 (sentinel for "did not finish").
        cold = ScenarioPack(
            name="unregistered-metrics-pack-2",
            description="x",
            datasets=("credit_g_like",),
            target_accuracy=0.95,
        )
        assert artifact_metrics(artifact, cold)["evals_to_target"] == 0


# ---------------------------------------------------------------- service
class TestScenarioJobs:
    def test_scenario_shape_lowers_to_spec(self):
        from repro.service.runtime import normalize_job_spec

        spec, name = normalize_job_spec(
            {
                "scenario": {
                    "pack": "tiny-test-arena",
                    "strategies": ["nsga2", "random"],
                    "seeds": [0, 1],
                    "warm_start": 2,
                    "store_path": "store.sqlite",
                }
            }
        )
        assert name == "arena-tiny_test_arena"
        assert spec["objectives"] == ["nsga2:codesign", "random:codesign"]
        assert spec["seeds"] == [0, 1]
        assert spec["warm_start"] == 2
        assert spec["store_path"] == "store.sqlite"

    def test_scenario_shape_defaults_to_arena_strategies(self):
        from repro.service.runtime import normalize_job_spec

        spec, _ = normalize_job_spec({"scenario": {"pack": "tiny-test-arena"}})
        assert spec["objectives"] == [
            f"{strategy}:codesign" for strategy in arena_strategies()
        ]

    def test_scenario_shape_error_paths(self):
        from repro.service.runtime import normalize_job_spec

        with pytest.raises(ServiceError, match="exactly one of"):
            normalize_job_spec({})
        with pytest.raises(ServiceError, match="exactly one of"):
            normalize_job_spec(
                {"run": {"dataset": "mnist_like"}, "scenario": {"pack": "noisy-labels"}}
            )
        with pytest.raises(ServiceError, match="'scenario.pack' is required"):
            normalize_job_spec({"scenario": {}})
        with pytest.raises(ServiceError, match="did you mean"):
            normalize_job_spec({"scenario": {"pack": "edge tiny dps"}})
        with pytest.raises(ServiceError, match="unknown scenario job key"):
            normalize_job_spec({"scenario": {"pack": "noisy-labels", "bogus": 1}})


# -------------------------------------------------------------------- CLI
class TestArenaCLI:
    def test_packs_lists_catalog(self, capsys):
        from repro.cli import main

        assert main(["arena", "packs"]) == 0
        out = capsys.readouterr().out
        for name in ("edge-tiny-dsp", "datacenter-throughput", "noisy-labels"):
            assert name in out

    def test_dry_run_plans_without_executing(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "arena",
                "--scenario",
                "tiny-test-arena",
                "--strategy",
                "random",
                "--output-dir",
                str(tmp_path),
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dry run: nothing executed" in out
        assert "credit_g_like__random-codesign__s0" in out
        assert "1 run(s) to execute" in out
        assert not (tmp_path / "leaderboard.sqlite").exists()

    def test_set_overrides_reach_the_plan(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "arena",
                "--scenario",
                "tiny-test-arena",
                "--strategy",
                "random",
                "--output-dir",
                str(tmp_path),
                "--set",
                "arena.seeds=[0,1,2]",
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 run(s) to execute" in out
        for seed in (0, 1, 2):
            assert f"credit_g_like__random-codesign__s{seed}" in out

    def test_unknown_scenario_reports_suggestion(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "arena",
                    "--scenario",
                    "edge tiny dps",
                    "--output-dir",
                    str(tmp_path),
                    "--dry-run",
                ]
            )
        message = str(excinfo.value)
        assert "unknown scenario pack" in message
        assert "did you mean edge-tiny-dsp?" in message

    def test_unknown_override_key_is_an_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown arena config key"):
            main(
                [
                    "arena",
                    "--output-dir",
                    str(tmp_path),
                    "--set",
                    "arena.bogus=1",
                    "--dry-run",
                ]
            )

    def test_show_without_leaderboard_is_an_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no leaderboard"):
            main(["arena", "show", "--output-dir", str(tmp_path / "missing")])

    def test_micro_tournament_populates_leaderboard_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        output_dir = tmp_path / "arena"
        csv_path = tmp_path / "lb.csv"
        json_path = tmp_path / "lb.json"
        code = main(
            [
                "arena",
                "--scenario",
                "tiny-test-arena",
                "--strategy",
                "random",
                "--output-dir",
                str(output_dir),
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Arena leaderboard" in out
        assert (output_dir / "leaderboard.sqlite").exists()
        csv_lines = csv_path.read_text().strip().splitlines()
        assert csv_lines[0] == ",".join(LEADERBOARD_COLUMNS)
        assert len(csv_lines) == 2
        payload = json.loads(json_path.read_text())
        assert payload[0]["strategy"] == "random"
        assert payload[0]["status"] == "completed"
        assert payload[0]["real_evals"] > 0

        # `arena show` renders the persisted standings in a fresh invocation
        # (the process-restart survival contract).
        assert main(["arena", "show", "--output-dir", str(output_dir)]) == 0
        shown = capsys.readouterr().out
        assert "tiny-test-arena" in shown
        assert "random" in shown
