"""Bit-identical equivalence of the batched training path vs the scalar path.

The batched evaluation pipeline is only usable because its results are
*exactly* those of the per-candidate path at fixed seeds — same cache keys,
same store rows, same search trajectories.  These tests pin that contract:
every accuracy, loss curve and early-stop epoch must match to the last bit
(``==``, not ``allclose``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SyntheticSpec, make_classification
from repro.nn import MLPSpec, TrainingConfig
from repro.nn.batched import BatchedTrainer, train_and_score_batch
from repro.nn.evaluation import (
    evaluate_kfold,
    evaluate_kfold_batch,
    evaluate_single_fold,
    evaluate_single_fold_batch,
)
from repro.nn.mlp import MLP
from repro.nn.training import Trainer


def _dataset(seed: int = 0, samples: int = 160, features: int = 12, classes: int = 3):
    spec = SyntheticSpec(
        name="batched-test",
        num_features=features,
        num_classes=classes,
        num_samples=samples,
    )
    return make_classification(spec, seed=seed)


def _assert_histories_identical(batched, scalar) -> None:
    assert batched.train_loss == scalar.train_loss
    assert batched.train_accuracy == scalar.train_accuracy
    assert batched.validation_accuracy == scalar.validation_accuracy
    assert batched.epochs_run == scalar.epochs_run
    assert batched.stopped_early == scalar.stopped_early


def _scalar_fit(spec, config, features, labels, seed):
    model = MLP(spec, seed=seed)
    trainer = Trainer(config, seed=seed)
    history = trainer.fit(model, features, labels)
    return model, history


SPEC = MLPSpec(input_size=12, output_size=3, hidden_sizes=(16, 8), activations=("relu", "tanh"))


class TestBatchedTrainerEquivalence:
    @pytest.mark.parametrize("optimizer", ["sgd", "momentum", "rmsprop", "adam"])
    def test_single_member_group_matches_scalar(self, optimizer):
        dataset = _dataset(seed=1)
        config = TrainingConfig(epochs=6, batch_size=16, optimizer=optimizer, learning_rate=0.01)
        scalar_model, scalar_history = _scalar_fit(
            SPEC, config, dataset.features, dataset.labels, seed=7
        )
        group, histories = BatchedTrainer(config).fit(
            SPEC, [dataset.features], [dataset.labels], seeds=[7]
        )
        _assert_histories_identical(histories[0], scalar_history)
        for index, layer in enumerate(scalar_model.layers):
            assert np.array_equal(group.weights[index][0], layer.weights)
            assert np.array_equal(group.biases[index][0], layer.bias)

    def test_group_matches_per_candidate_loop_across_seeds(self):
        dataset = _dataset(seed=2)
        config = TrainingConfig(epochs=8, batch_size=32, learning_rate=0.005)
        seeds = [3, 11, 42, 1234]
        group, histories = BatchedTrainer(config).fit(
            SPEC,
            [dataset.features] * len(seeds),
            [dataset.labels] * len(seeds),
            seeds=seeds,
        )
        for position, seed in enumerate(seeds):
            scalar_model, scalar_history = _scalar_fit(
                SPEC, config, dataset.features, dataset.labels, seed=seed
            )
            _assert_histories_identical(histories[position], scalar_history)
            for index, layer in enumerate(scalar_model.layers):
                assert np.array_equal(group.weights[index][position], layer.weights)
                assert np.array_equal(group.biases[index][position], layer.bias)

    def test_early_stopping_epochs_match_per_seed(self):
        # A patient config on an easy dataset makes candidates stop at
        # different epochs; frozen candidates must not perturb the others.
        dataset = _dataset(seed=3, samples=200)
        config = TrainingConfig(
            epochs=20, batch_size=16, learning_rate=0.05, early_stopping_patience=2
        )
        seeds = [0, 1, 2, 3, 4, 5]
        _, histories = BatchedTrainer(config).fit(
            SPEC,
            [dataset.features] * len(seeds),
            [dataset.labels] * len(seeds),
            seeds=seeds,
        )
        stop_epochs = set()
        for position, seed in enumerate(seeds):
            _, scalar_history = _scalar_fit(
                SPEC, config, dataset.features, dataset.labels, seed=seed
            )
            _assert_histories_identical(histories[position], scalar_history)
            stop_epochs.add(scalar_history.epochs_run)
        # The scenario must actually exercise divergent stopping points.
        assert len(stop_epochs) > 1

    def test_no_bias_and_no_shuffle(self):
        dataset = _dataset(seed=4)
        spec = MLPSpec(
            input_size=12, output_size=3, hidden_sizes=(10,), activations=("sigmoid",), use_bias=False
        )
        config = TrainingConfig(epochs=4, batch_size=16, shuffle=False)
        _, histories = BatchedTrainer(config).fit(
            spec, [dataset.features] * 2, [dataset.labels] * 2, seeds=[9, 10]
        )
        for position, seed in enumerate([9, 10]):
            _, scalar_history = _scalar_fit(
                spec, config, dataset.features, dataset.labels, seed=seed
            )
            _assert_histories_identical(histories[position], scalar_history)

    def test_validation_disabled_runs_all_epochs(self):
        dataset = _dataset(seed=5)
        config = TrainingConfig(epochs=3, batch_size=16, early_stopping_patience=0)
        _, histories = BatchedTrainer(config).fit(
            SPEC, [dataset.features], [dataset.labels], seeds=[1]
        )
        _, scalar_history = _scalar_fit(SPEC, config, dataset.features, dataset.labels, seed=1)
        _assert_histories_identical(histories[0], scalar_history)
        assert histories[0].epochs_run == 3
        assert histories[0].validation_accuracy == []

    def test_train_and_score_batch_scores_match(self):
        train = _dataset(seed=6, samples=140)
        test = _dataset(seed=7, samples=60)
        config = TrainingConfig(epochs=5, batch_size=16)
        seeds = [21, 22, 23]
        scored = train_and_score_batch(
            SPEC,
            [train.features] * 3,
            [train.labels] * 3,
            [test.features] * 3,
            [test.labels] * 3,
            training_config=config,
            seeds=seeds,
        )
        for (score, history), seed in zip(scored, seeds):
            model, scalar_history = _scalar_fit(
                SPEC, config, train.features, train.labels, seed=seed
            )
            from repro.nn.metrics import accuracy

            assert score == accuracy(model.predict(test.features), test.labels)
            _assert_histories_identical(history, scalar_history)


class TestBatchedEvaluationEquivalence:
    def test_single_fold_batch_matches_loop(self):
        train = _dataset(seed=8, samples=150)
        test = _dataset(seed=9, samples=50)
        config = TrainingConfig(epochs=5, batch_size=16, early_stopping_patience=2)
        seeds = [5, 17, 29]
        batched = evaluate_single_fold_batch(
            SPEC,
            train.features,
            train.labels,
            test.features,
            test.labels,
            training_config=config,
            seeds=seeds,
        )
        for result, seed in zip(batched, seeds):
            scalar = evaluate_single_fold(
                SPEC,
                train.features,
                train.labels,
                test.features,
                test.labels,
                training_config=config,
                seed=seed,
            )
            assert result.accuracy == scalar.accuracy
            assert result.fold_accuracies == scalar.fold_accuracies
            assert result.parameter_count == scalar.parameter_count
            for batched_history, scalar_history in zip(result.histories, scalar.histories):
                _assert_histories_identical(batched_history, scalar_history)

    def test_single_fold_batch_without_standardization(self):
        train = _dataset(seed=10, samples=120)
        test = _dataset(seed=11, samples=40)
        config = TrainingConfig(epochs=3, batch_size=32)
        batched = evaluate_single_fold_batch(
            SPEC,
            train.features,
            train.labels,
            test.features,
            test.labels,
            training_config=config,
            seeds=[4],
            standardize=False,
        )
        scalar = evaluate_single_fold(
            SPEC,
            train.features,
            train.labels,
            test.features,
            test.labels,
            training_config=config,
            seed=4,
            standardize=False,
        )
        assert batched[0].accuracy == scalar.accuracy

    def test_kfold_batch_matches_loop(self):
        dataset = _dataset(seed=12, samples=110)
        config = TrainingConfig(epochs=3, batch_size=16, early_stopping_patience=2)
        seeds = [31, 57]
        batched = evaluate_kfold_batch(
            SPEC,
            dataset.features,
            dataset.labels,
            num_folds=5,
            training_config=config,
            seeds=seeds,
        )
        for result, seed in zip(batched, seeds):
            scalar = evaluate_kfold(
                SPEC,
                dataset.features,
                dataset.labels,
                num_folds=5,
                training_config=config,
                seed=seed,
            )
            assert result.accuracy == scalar.accuracy
            assert result.fold_accuracies == scalar.fold_accuracies
            for batched_history, scalar_history in zip(result.histories, scalar.histories):
                _assert_histories_identical(batched_history, scalar_history)

    def test_kfold_batch_respects_small_group_chunks(self):
        dataset = _dataset(seed=13, samples=90)
        config = TrainingConfig(epochs=2, batch_size=16)
        chunked = evaluate_kfold_batch(
            SPEC,
            dataset.features,
            dataset.labels,
            num_folds=4,
            training_config=config,
            seeds=[8],
            max_group_size=1,
        )
        unchunked = evaluate_kfold_batch(
            SPEC,
            dataset.features,
            dataset.labels,
            num_folds=4,
            training_config=config,
            seeds=[8],
            max_group_size=16,
        )
        assert chunked[0].fold_accuracies == unchunked[0].fold_accuracies

    def test_mixed_topologies_batch_by_spec(self):
        # The worker groups by spec; here we assert each spec group alone
        # reproduces the scalar loop, covering a mixed-topology population.
        train = _dataset(seed=14, samples=100)
        test = _dataset(seed=15, samples=40)
        config = TrainingConfig(epochs=3, batch_size=16)
        specs = [
            MLPSpec(input_size=12, output_size=3, hidden_sizes=(8,), activations=("relu",)),
            MLPSpec(input_size=12, output_size=3, hidden_sizes=(24, 12), activations=("elu", "relu")),
        ]
        for spec in specs:
            batched = evaluate_single_fold_batch(
                spec,
                train.features,
                train.labels,
                test.features,
                test.labels,
                training_config=config,
                seeds=[2, 3],
            )
            for result, seed in zip(batched, [2, 3]):
                scalar = evaluate_single_fold(
                    spec,
                    train.features,
                    train.labels,
                    test.features,
                    test.labels,
                    training_config=config,
                    seed=seed,
                )
                assert result.accuracy == scalar.accuracy
