"""Unit tests for repro.analysis and the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.figures import (
    ScatterSeries,
    accuracy_throughput_series,
    ascii_scatter,
    efficiency_series,
)
from repro.analysis.frontier import (
    accuracy_band_summary,
    accuracy_throughput_frontier,
    frontier_rows,
    throughput_neuron_correlation,
)
from repro.analysis.reporting import format_scientific, format_table, rows_to_csv, save_rows_csv
from repro.cli import build_parser, main
from repro.core.genome import CoDesignGenome, HardwareGenome, MLPGenome
from repro.hardware.systolic import GridConfig

from tests.conftest import make_fake_evaluation


def _evaluation(neurons: int, accuracy: float, fpga: float, gpu: float):
    genome = CoDesignGenome(
        mlp=MLPGenome(hidden_layers=(neurons,), activations=("relu",)),
        hardware=HardwareGenome(grid=GridConfig(4, 4, 2, 2, 2), batch_size=512),
    )
    return make_fake_evaluation(genome, accuracy=accuracy, fpga_outputs=fpga, gpu_outputs=gpu)


@pytest.fixture
def evaluations():
    return [
        _evaluation(16, 0.99, 1e5, 9e5),
        _evaluation(32, 0.98, 1.5e6, 1.0e6),
        _evaluation(64, 0.97, 2.5e6, 1.1e6),
        _evaluation(128, 0.90, 4.0e6, 1.0e6),
        _evaluation(256, 0.80, 6.0e6, 9.5e5),
    ]


class TestReporting:
    def test_format_scientific(self):
        assert format_scientific(2.45e6) == "2.45E6"
        assert format_scientific(0) == "0"
        assert format_scientific(8.19e3) == "8.19E3"

    def test_format_table_alignment_and_title(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 123456.0}]
        text = format_table(rows, title="My Table")
        assert "My Table" in text
        assert "name" in text and "value" in text
        assert "1.23E5" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_rows_to_csv_and_save(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        text = rows_to_csv(rows)
        assert text.splitlines()[0] == "a,b"
        path = tmp_path / "out" / "rows.csv"
        save_rows_csv(rows, path)
        assert path.exists()
        assert rows_to_csv([]) == ""


class TestFrontierAnalysis:
    def test_frontier_is_non_dominated(self, evaluations):
        frontier = accuracy_throughput_frontier(evaluations, device="fpga")
        assert len(frontier) == len(evaluations)  # monotone trade-off: all points on frontier
        dominated = accuracy_throughput_frontier(
            evaluations + [_evaluation(48, 0.90, 1e5, 1e5)], device="fpga"
        )
        assert len(dominated) == len(evaluations)

    def test_frontier_rows_order(self, evaluations):
        rows = frontier_rows(evaluations, count=2, device="fpga")
        assert rows[0].accuracy == pytest.approx(0.99)
        assert rows[1].fpga_outputs_per_second >= rows[0].fpga_outputs_per_second

    def test_accuracy_band_summary_shows_throughput_spread(self, evaluations):
        bands = accuracy_band_summary(evaluations, band_width=0.01, device="fpga", top_bands=3)
        assert bands
        assert bands[0].accuracy_ceiling == pytest.approx(0.99)
        assert all(band.count >= 1 for band in bands)
        assert bands[0].max_outputs_per_second >= bands[0].min_outputs_per_second
        with pytest.raises(ValueError):
            accuracy_band_summary(evaluations, band_width=0.0)

    def test_neuron_throughput_correlation_signs(self, evaluations):
        fpga_corr = throughput_neuron_correlation(evaluations, device="fpga")
        gpu_corr = throughput_neuron_correlation(evaluations, device="gpu")
        assert fpga_corr > 0.8  # constructed to rise with neurons here
        assert abs(gpu_corr) < abs(fpga_corr)
        assert np.isnan(throughput_neuron_correlation([], device="fpga"))

    def test_invalid_device_rejected(self, evaluations):
        with pytest.raises(ValueError):
            accuracy_throughput_frontier(evaluations, device="tpu")


class TestFigures:
    def test_accuracy_throughput_series(self, evaluations):
        series = accuracy_throughput_series(evaluations, device="fpga")
        assert len(series) == len(evaluations)
        low, high = series.y_range()
        assert low == pytest.approx(1e5)
        assert high == pytest.approx(6e6)

    def test_efficiency_series(self, evaluations):
        series = efficiency_series(evaluations, device="gpu")
        assert len(series) == len(evaluations)
        assert all(0 <= value <= 1 for value in series.y)

    def test_scatter_series_validation(self):
        with pytest.raises(ValueError):
            ScatterSeries(name="bad", x=[1.0], y=[])
        series = ScatterSeries(name="ok")
        series.add(1.0, 2.0)
        assert len(series) == 1

    def test_ascii_scatter_renders(self, evaluations):
        series = accuracy_throughput_series(evaluations, device="fpga")
        art = ascii_scatter(series, width=40, height=10, log_y=True)
        assert "*" in art
        assert series.name in art
        assert "(no points)" in ascii_scatter(ScatterSeries(name="empty"))
        with pytest.raises(ValueError):
            ascii_scatter(series, width=5, height=2)


class TestCLI:
    def test_parser_builds_and_lists_commands(self):
        parser = build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "credit_g_like" in out
        assert "mnist_like" in out

    def test_template_command_writes_config(self, tmp_path, capsys):
        output = tmp_path / "config.json"
        code = main(
            [
                "template",
                "--dataset",
                "credit-g",
                "--scale",
                "0.05",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["nna"]["input_size"] == 20
        assert data["evaluation_protocol"] == "10-fold"

    def test_run_command_end_to_end(self, tmp_path, capsys):
        """A very small real run through the CLI (accuracy-only to keep it fast)."""
        results_path = tmp_path / "results.json"
        code = main(
            [
                "run",
                "--dataset",
                "credit-g",
                "--scale",
                "0.08",
                "--population",
                "4",
                "--max-evaluations",
                "8",
                "--epochs",
                "2",
                "--objective",
                "codesign",
                "--output",
                str(results_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert "Pareto frontier" in out
        payload = json.loads(results_path.read_text())
        assert 0 <= payload["best_accuracy"] <= 1
        assert payload["statistics"]["models_generated"] == 8

    def test_run_requires_a_dataset(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_backends_lists_strategies(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "search strategies" in out
        assert "nsga2" in out

    def test_frontier_dry_run_prints_plan_without_executing(self, capsys):
        code = main(
            [
                "frontier",
                "--dataset",
                "credit-g",
                "--scale",
                "0.05",
                "--strategy",
                "nsga2",
                "--constraint",
                "dsp_usage<=512",
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy:    nsga2" in out
        assert "dsp_usage<=512" in out
        assert "dry run: nothing executed" in out

    def test_frontier_command_end_to_end(self, tmp_path, capsys):
        output = tmp_path / "frontier.json"
        code = main(
            [
                "frontier",
                "--dataset",
                "credit-g",
                "--scale",
                "0.08",
                "--population",
                "4",
                "--max-evaluations",
                "8",
                "--epochs",
                "2",
                "--strategy",
                "nsga2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "frontier growth" in out
        payload = json.loads(output.read_text())
        assert payload["strategy"] == "nsga2"
        assert payload["objectives"] == ["accuracy", "fpga_throughput"]
        assert payload["frontier"]
        assert payload["snapshots"]
        assert payload["statistics"]["frontier_size"] == len(payload["frontier"])

    def test_frontier_respects_config_file_strategy(self, tmp_path, capsys):
        """The command default (nsga2) must not override a config file's choice."""
        from repro.core.config import ECADConfig
        from repro.datasets.registry import load_dataset

        dataset = load_dataset("credit-g", scale=0.05)
        config_path = tmp_path / "config.json"
        ECADConfig.template_for_dataset(dataset, strategy="evolutionary").save(config_path)
        code = main(
            [
                "frontier",
                "--dataset",
                "credit-g",
                "--scale",
                "0.05",
                "--config",
                str(config_path),
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy:    evolutionary" in out
        # ...while an explicit flag still wins over the config file.
        code = main(
            [
                "frontier",
                "--dataset",
                "credit-g",
                "--scale",
                "0.05",
                "--config",
                str(config_path),
                "--strategy",
                "nsga2",
                "--dry-run",
            ]
        )
        assert code == 0
        assert "strategy:    nsga2" in capsys.readouterr().out

    def test_frontier_rejects_bad_constraint(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "frontier",
                    "--dataset",
                    "credit-g",
                    "--scale",
                    "0.05",
                    "--constraint",
                    "not_an_objective<=1",
                    "--dry-run",
                ]
            )

    def test_run_from_csv(self, tiny_dataset, tmp_path, capsys):
        from repro.datasets.csv_io import save_dataset_csv

        csv_path = tmp_path / "tiny.csv"
        save_dataset_csv(tiny_dataset, csv_path)
        code = main(
            [
                "run",
                "--csv",
                str(csv_path),
                "--population",
                "4",
                "--max-evaluations",
                "6",
                "--epochs",
                "2",
            ]
        )
        assert code == 0
        assert "best accuracy" in capsys.readouterr().out
