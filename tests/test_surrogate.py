"""Tests for the surrogate-assisted search subsystem (repro.surrogate).

Covers the acceptance criteria from the subsystem's introduction:

* genome feature extraction is deterministic and bit-identical across
  processes,
* split-conformal intervals reach their nominal coverage (within 5%) on
  held-out rows,
* the ``surrogate`` strategy is a provable no-op — bit-identical to its
  base strategy — on an empty or too-small store,
* a seeded store engages the screen and the new run-statistics counters,
* fidelity rungs winnow survivors without leaking the reduced training
  budget.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.core.config import ECADConfig, StoreConfig, SurrogateConfig
from repro.core.errors import ConfigurationError
from repro.core.fitness import FitnessObjective
from repro.core.search import CoDesignSearch
from repro.core.strategy import SurrogateStrategy, get_strategy
from repro.nn.training import TrainingConfig
from repro.surrogate.features import (
    feature_names,
    features_from_parts,
    genome_features,
    row_features,
)
from repro.surrogate.fidelity import SuccessiveHalving
from repro.surrogate.model import ConformalRegressor, SurrogateModel
from repro.surrogate.screen import OffspringScreener

from tests.conftest import make_fake_evaluation


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------

_FEATURE_SCRIPT = """
import hashlib
from repro.core.genome import CoDesignGenome, HardwareGenome, MLPGenome
from repro.hardware.systolic import GridConfig
from repro.surrogate.features import genome_features

genome = CoDesignGenome(
    mlp=MLPGenome(hidden_layers=(16, 8), activations=("relu", "tanh"), use_bias=True),
    hardware=HardwareGenome(
        grid=GridConfig(rows=8, columns=8, interleave_rows=4, interleave_columns=4,
                        vector_width=4),
        batch_size=1024,
    ),
    gpu_batch_size=256,
)
print(hashlib.sha256(genome_features(genome).tobytes()).hexdigest())
"""


class TestFeatures:
    def test_names_match_vector_length(self, sample_genome):
        vector = genome_features(sample_genome)
        assert vector.shape == (len(feature_names()),)
        assert vector.dtype == np.float64
        assert np.all(np.isfinite(vector))

    def test_bit_identical_across_processes(self, sample_genome):
        """The exact acceptance criterion: same genome, same bytes, any process."""
        import hashlib

        local = hashlib.sha256(genome_features(sample_genome).tobytes()).hexdigest()
        digests = [
            subprocess.run(
                [sys.executable, "-c", _FEATURE_SCRIPT],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert digests[0] == digests[1] == local

    def test_row_features_match_genome_features(self, sample_genome):
        """Store rows and live genomes must land on the same feature vector."""
        evaluation = make_fake_evaluation(sample_genome, 0.9, 1e6, 2e6)
        row = evaluation.summary()
        assert np.array_equal(row_features(row), genome_features(sample_genome))

    def test_unknown_activation_encodes_as_zero(self):
        grid = {"rows": 4, "columns": 4, "interleave_rows": 2,
                "interleave_columns": 2, "vector_width": 4}
        known = features_from_parts([8], ["relu"], True, grid, 256, 128)
        unknown = features_from_parts([8], ["swish"], True, grid, 256, 128)
        assert not np.array_equal(known, unknown)
        assert np.all(np.isfinite(unknown))


# ---------------------------------------------------------------------------
# Conformal model
# ---------------------------------------------------------------------------


class TestConformalRegressor:
    def _linear_data(self, rng, n, d=5, noise=0.1):
        X = rng.normal(size=(n, d))
        w = np.linspace(1.0, -1.0, d)
        y = X @ w + noise * rng.normal(size=n)
        return X, y

    def test_coverage_at_least_nominal_minus_five_percent(self, rng):
        """The paper-motivating guarantee, checked empirically on held-out rows."""
        X, y = self._linear_data(rng, 320)
        model = ConformalRegressor(confidence=0.8)
        assert model.fit(X[:240], y[:240])
        predictions, half_width = model.predict(X[240:])
        covered = np.abs(y[240:] - predictions) <= half_width
        assert covered.mean() >= 0.8 - 0.05

    def test_wider_intervals_at_higher_confidence(self, rng):
        X, y = self._linear_data(rng, 200)
        loose = ConformalRegressor(confidence=0.6)
        tight = ConformalRegressor(confidence=0.95)
        assert loose.fit(X, y) and tight.fit(X, y)
        _, loose_width = loose.predict(X[:1])
        _, tight_width = tight.predict(X[:1])
        assert tight_width > loose_width

    def test_refuses_to_fit_without_enough_calibration_rows(self, rng):
        X, y = self._linear_data(rng, 8)
        model = ConformalRegressor(confidence=0.8)
        assert not model.fit(X, y)
        assert not model.fitted

    def test_surrogate_model_rejects_unsupported_objectives(self):
        model = SurrogateModel(["accuracy", "chip_temperature"])
        assert not model.supported
        assert not model.ready


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


class TestSurrogateConfig:
    def test_defaults_valid_and_active(self):
        config = SurrogateConfig()
        assert config.active
        assert config.base == "evolutionary"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": "random"},
            {"min_rows": 1},
            {"pool_size": 1},
            {"exploration_fraction": 1.5},
            {"confidence": 1.0},
            {"refit_interval": 0},
            {"rung_epochs": (4, 2)},
            {"rung_epochs": (0,)},
            {"rung_survivors": 0},
            {"promote_fraction": 0.0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            SurrogateConfig(**kwargs)

    def test_round_trips_through_ecad_config(self, tiny_dataset, tmp_path):
        config = ECADConfig.template_for_dataset(
            tiny_dataset,
            strategy="surrogate",
            surrogate=SurrogateConfig(pool_size=4, rung_epochs=(2, 4), enabled=False),
        )
        path = tmp_path / "config.json"
        config.save(path)
        loaded = ECADConfig.load(path)
        assert loaded.surrogate == config.surrogate
        assert loaded.surrogate.rung_epochs == (2, 4)
        assert not loaded.surrogate.active

    def test_set_overrides_reach_the_section(self, tiny_dataset):
        config = ECADConfig.template_for_dataset(tiny_dataset)
        updated = config.with_overrides(
            ["surrogate.pool_size=4", "surrogate.rung_epochs=[2,4]"]
        )
        assert updated.surrogate.pool_size == 4
        assert updated.surrogate.rung_epochs == (2, 4)
        with pytest.raises(ConfigurationError):
            config.with_overrides(["surrogate.turbo=true"])

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ConfigurationError):
            SurrogateConfig.from_dict({"poolsize": 4})

    def test_surrogate_section_never_changes_the_problem_digest(self, tiny_dataset):
        """Screen settings shape which candidates run, not what a run returns."""
        plain = ECADConfig.template_for_dataset(tiny_dataset)
        screened = ECADConfig.template_for_dataset(
            tiny_dataset,
            strategy="surrogate",
            surrogate=SurrogateConfig(pool_size=4, min_rows=16),
        )
        from repro.store.digest import problem_digest

        assert problem_digest(plain, tiny_dataset) == problem_digest(screened, tiny_dataset)


# ---------------------------------------------------------------------------
# Strategy: the no-op guarantee and the engaged screen
# ---------------------------------------------------------------------------


def _search(dataset, tmp_path=None, **config_overrides) -> CoDesignSearch:
    if tmp_path is not None:
        config_overrides.setdefault(
            "store", StoreConfig(path=str(tmp_path / "store.sqlite"))
        )
    config = ECADConfig.template_for_dataset(
        dataset,
        population_size=6,
        max_evaluations=30,
        seed=0,
        training_epochs=2,
        **config_overrides,
    )
    return CoDesignSearch(dataset, config=config)


def _trace(result) -> list[tuple[str, float]]:
    return [
        (evaluation.genome.cache_key(), evaluation.accuracy)
        for evaluation in result.history.evaluations()
    ]


class TestSurrogateStrategyNoOp:
    def test_registered_and_resolvable(self):
        assert isinstance(get_strategy("surrogate"), SurrogateStrategy)

    def test_no_store_runs_bit_identical_to_base(self, tiny_dataset, fake_evaluator):
        base = _search(tiny_dataset, strategy="evolutionary").run(evaluator=fake_evaluator)
        screened = _search(tiny_dataset, strategy="surrogate").run(evaluator=fake_evaluator)
        assert _trace(screened) == _trace(base)
        assert screened.statistics.surrogate_screened == 0
        assert screened.statistics.real_evals_saved == 0
        assert screened.statistics.rung_evaluations == 0

    def test_empty_store_runs_bit_identical_to_base(
        self, tiny_dataset, fake_evaluator, tmp_path
    ):
        base = _search(tiny_dataset, tmp_path / "a", strategy="evolutionary").run(
            evaluator=fake_evaluator
        )
        screened = _search(tiny_dataset, tmp_path / "b", strategy="surrogate").run(
            evaluator=fake_evaluator
        )
        assert _trace(screened) == _trace(base)
        assert screened.statistics.surrogate_screened == 0

    def test_disabled_surrogate_runs_base_even_with_rows(
        self, tiny_dataset, fake_evaluator, tmp_path
    ):
        _search(tiny_dataset, tmp_path, strategy="evolutionary").run(
            evaluator=fake_evaluator
        )
        base = _search(tiny_dataset, strategy="evolutionary").run(evaluator=fake_evaluator)
        disabled = _search(
            tiny_dataset,
            tmp_path,
            strategy="surrogate",
            surrogate=SurrogateConfig(enabled=False),
        ).run(evaluator=fake_evaluator)
        assert _trace(disabled) == _trace(base)
        assert disabled.statistics.surrogate_screened == 0

    def test_nsga2_base_supported(self, tiny_dataset, fake_evaluator):
        result = _search(
            tiny_dataset,
            strategy="surrogate",
            surrogate=SurrogateConfig(base="nsga2"),
        ).run(evaluator=fake_evaluator)
        assert result.statistics.models_generated == 30


class TestSurrogateStrategyEngaged:
    def test_seeded_store_engages_screen_and_counters(
        self, tiny_dataset, fake_evaluator, tmp_path
    ):
        # First run populates the store for this problem digest...
        _search(tiny_dataset, tmp_path, strategy="evolutionary").run(
            evaluator=fake_evaluator
        )
        # ...and the second run screens against those rows.
        screened = _search(
            tiny_dataset,
            tmp_path,
            strategy="surrogate",
            surrogate=SurrogateConfig(min_rows=16, pool_size=4),
        ).run(evaluator=fake_evaluator)
        stats = screened.statistics
        assert stats.surrogate_screened > 0
        assert stats.real_evals_saved > 0
        assert stats.models_generated == 30
        # Saved evaluations are pool members that never reached the evaluator:
        # every screened step breeds a pool but spends one real evaluation.
        assert stats.real_evals_saved >= stats.surrogate_screened // 4

    def test_statistics_dict_carries_surrogate_counters(
        self, tiny_dataset, fake_evaluator
    ):
        result = _search(tiny_dataset, strategy="surrogate").run(evaluator=fake_evaluator)
        data = result.statistics.to_dict()
        for key in ("surrogate_screened", "real_evals_saved", "surrogate_mae",
                    "rung_evaluations"):
            assert key in data


# ---------------------------------------------------------------------------
# Screener unit behaviour
# ---------------------------------------------------------------------------


def _objectives():
    return [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]


class TestOffspringScreener:
    def test_rank_before_ready_raises(self, sample_genome):
        screener = OffspringScreener(_objectives(), SurrogateConfig())
        with pytest.raises(RuntimeError):
            screener.rank([sample_genome], [])

    def test_failed_and_duplicate_rows_ignored(self, sample_genome):
        screener = OffspringScreener(_objectives(), SurrogateConfig())
        good = make_fake_evaluation(sample_genome, 0.9, 1e6, 2e6).summary()
        failed = dict(good, cache_key="other", error="boom")
        assert screener.seed([good, good, failed]) == 1
        assert screener.row_count == 1

    def test_becomes_ready_with_enough_rows(self, small_search_space, fake_evaluator, rng):
        config = SurrogateConfig(min_rows=16)
        screener = OffspringScreener(_objectives(), config)
        rows = []
        seen = set()
        while len(rows) < 24:
            genome = small_search_space.random_genome(rng)
            if genome.cache_key() in seen:
                continue
            seen.add(genome.cache_key())
            rows.append(fake_evaluator(genome).summary())
        assert screener.seed(rows) == 24
        assert screener.ready
        pool = [small_search_space.random_genome(rng) for _ in range(4)]
        order = screener.rank(pool, [])
        assert sorted(order) == list(range(len(pool)))


# ---------------------------------------------------------------------------
# Fidelity rungs
# ---------------------------------------------------------------------------


class _CountingEvaluator:
    """Evaluator exposing a mutable training_config, like the Master."""

    def __init__(self):
        self.training_config = TrainingConfig(epochs=8, batch_size=16)
        self.calls: list[int] = []

    def __call__(self, genome):
        self.calls.append(self.training_config.epochs)
        accuracy = min(0.99, 0.5 + genome.mlp.total_hidden_neurons / 200.0)
        return make_fake_evaluation(genome, accuracy, 1e6, 2e6)


class TestSuccessiveHalving:
    def _pool(self, small_search_space, rng, count=4):
        pool = []
        seen = set()
        while len(pool) < count:
            genome = small_search_space.random_genome(rng)
            if genome.cache_key() not in seen:
                seen.add(genome.cache_key())
                pool.append(genome)
        return pool

    def test_winnows_to_promote_fraction(self, small_search_space, rng):
        evaluator = _CountingEvaluator()
        halving = SuccessiveHalving(evaluator, rung_epochs=(2,), promote_fraction=0.5)
        pool = self._pool(small_search_space, rng)
        survivors, spent = halving.winnow(pool)
        assert len(survivors) == 2
        assert spent == 4
        assert evaluator.calls == [2, 2, 2, 2]
        # The best low-fidelity candidate survives.
        best = max(pool, key=lambda g: g.mlp.total_hidden_neurons)
        assert best in survivors

    def test_restores_full_training_budget(self, small_search_space, rng):
        evaluator = _CountingEvaluator()
        halving = SuccessiveHalving(evaluator, rung_epochs=(2, 4), promote_fraction=0.5)
        halving.winnow(self._pool(small_search_space, rng))
        assert evaluator.training_config.epochs == 8

    def test_rung_at_or_above_full_budget_skipped(self, small_search_space, rng):
        evaluator = _CountingEvaluator()
        halving = SuccessiveHalving(evaluator, rung_epochs=(8,), promote_fraction=0.5)
        pool = self._pool(small_search_space, rng)
        survivors, spent = halving.winnow(pool)
        assert survivors == pool
        assert spent == 0

    def test_plain_callable_disables_rungs(self, small_search_space, rng, fake_evaluator):
        halving = SuccessiveHalving(fake_evaluator, rung_epochs=(2,))
        pool = self._pool(small_search_space, rng)
        survivors, spent = halving.winnow(pool)
        assert survivors == pool
        assert spent == 0

    def test_crashing_rung_cannot_promote_a_broken_candidate(
        self, small_search_space, rng
    ):
        class Flaky(_CountingEvaluator):
            def __call__(self, genome):
                if len(self.calls) == 0:
                    self.calls.append(self.training_config.epochs)
                    raise RuntimeError("worker died")
                return super().__call__(genome)

        evaluator = Flaky()
        halving = SuccessiveHalving(evaluator, rung_epochs=(2,), promote_fraction=0.25)
        pool = self._pool(small_search_space, rng)
        survivors, spent = halving.winnow(pool)
        assert spent == 4
        assert len(survivors) == 1
        assert survivors[0] is not pool[0]


# ---------------------------------------------------------------------------
# Engine integration details
# ---------------------------------------------------------------------------


class TestSurrogateEngineWiring:
    def test_parallel_configs_are_clamped_serial(self, tiny_dataset, fake_evaluator):
        search = _search(
            tiny_dataset,
            strategy="surrogate",
            backend="threads",
            eval_parallelism=4,
        )
        from repro.surrogate.engine import build_surrogate_engine

        engine = build_surrogate_engine(search, fake_evaluator)
        assert engine.config.eval_parallelism == 1
        assert engine.config.eval_batch_size == 1

    def test_engine_config_passthrough_unchanged_for_base(
        self, tiny_dataset, fake_evaluator
    ):
        search = _search(tiny_dataset, strategy="surrogate")
        from repro.surrogate.engine import build_surrogate_engine

        engine = build_surrogate_engine(search, fake_evaluator)
        expected = search.config.to_engine_config()
        assert engine.config == expected
