"""Unit tests for fitness evaluation, Pareto analysis, the evaluation cache,
population management and selection schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import EvaluationCache
from repro.core.candidate import CandidateEvaluation
from repro.core.errors import ConfigurationError, SearchError
from repro.core.fitness import (
    FitnessEvaluator,
    FitnessObjective,
    available_objectives,
    get_objective,
    register_objective,
)
from repro.core.genome import CoDesignGenome, HardwareGenome, MLPGenome
from repro.core.pareto import (
    ParetoPoint,
    dominates,
    knee_point,
    make_points,
    pareto_frontier,
    pareto_frontier_indices,
    top_tradeoff_points,
)
from repro.core.population import Individual, Population
from repro.core.selection import (
    NSGA2Selection,
    RankSelection,
    RouletteWheelSelection,
    TournamentSelection,
    available_selection_schemes,
    get_selection,
)
from repro.hardware.systolic import GridConfig

from tests.conftest import make_fake_evaluation


def _genome(neurons: int = 16, rows: int = 4) -> CoDesignGenome:
    return CoDesignGenome(
        mlp=MLPGenome(hidden_layers=(neurons,), activations=("relu",)),
        hardware=HardwareGenome(grid=GridConfig(rows, 4, 2, 2, 2), batch_size=512),
    )


class TestObjectives:
    def test_builtin_objectives_registered(self):
        names = available_objectives()
        for expected in ("accuracy", "fpga_throughput", "gpu_throughput", "fpga_latency", "fpga_efficiency"):
            assert expected in names

    def test_objective_values_from_evaluation(self):
        evaluation = make_fake_evaluation(_genome(), accuracy=0.9, fpga_outputs=2e6, gpu_outputs=1e6)
        assert get_objective("accuracy")(evaluation) == pytest.approx(0.9)
        assert get_objective("fpga_throughput")(evaluation) == pytest.approx(2e6)
        assert get_objective("gpu_throughput")(evaluation) == pytest.approx(1e6)
        assert get_objective("dsp_usage")(evaluation) == evaluation.genome.hardware.grid.dsp_blocks_used

    def test_missing_metrics_give_neutral_values(self):
        evaluation = make_fake_evaluation(_genome(), accuracy=0.5)
        assert get_objective("fpga_throughput")(evaluation) == 0.0
        assert get_objective("fpga_latency")(evaluation) == float("inf")
        assert get_objective("fpga_efficiency")(evaluation) == 0.0

    def test_register_custom_objective(self):
        register_objective("test_neurons", lambda e: float(e.genome.mlp.total_hidden_neurons), overwrite=True)
        evaluation = make_fake_evaluation(_genome(neurons=24), accuracy=0.5)
        assert get_objective("test_neurons")(evaluation) == 24.0
        with pytest.raises(ConfigurationError):
            register_objective("test_neurons", lambda e: 0.0)
        with pytest.raises(ConfigurationError):
            get_objective("does_not_exist")

    def test_objective_config_validation(self):
        with pytest.raises(ConfigurationError):
            FitnessObjective(name="not_registered")
        with pytest.raises(ConfigurationError):
            FitnessObjective(name="accuracy", weight=0.0)


class TestFitnessEvaluator:
    def test_accuracy_only_orders_by_accuracy(self):
        evaluator = FitnessEvaluator([FitnessObjective.accuracy()])
        evaluations = [
            make_fake_evaluation(_genome(8), accuracy=0.6, fpga_outputs=1e6),
            make_fake_evaluation(_genome(16), accuracy=0.9, fpga_outputs=1e5),
            make_fake_evaluation(_genome(32), accuracy=0.75, fpga_outputs=5e5),
        ]
        results = evaluator.score_population(evaluations)
        order = np.argsort([-r.fitness for r in results])
        assert list(order) == [1, 2, 0]

    def test_multi_objective_rewards_balanced_candidates(self):
        evaluator = FitnessEvaluator(
            [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]
        )
        evaluations = [
            make_fake_evaluation(_genome(8), accuracy=0.90, fpga_outputs=1e4),
            make_fake_evaluation(_genome(16), accuracy=0.89, fpga_outputs=9e6),
            make_fake_evaluation(_genome(32), accuracy=0.50, fpga_outputs=9.5e6),
        ]
        results = evaluator.score_population(evaluations)
        best = int(np.argmax([r.fitness for r in results]))
        assert best == 1  # near-top accuracy AND near-top throughput wins

    def test_minimized_objective_contributes_inverted(self):
        evaluator = FitnessEvaluator([FitnessObjective(name="parameter_count", maximize=False)])
        small = make_fake_evaluation(_genome(8), accuracy=0.5)
        big = make_fake_evaluation(_genome(64), accuracy=0.5)
        results = evaluator.score_population([small, big])
        assert results[0].fitness > results[1].fitness

    def test_failed_evaluations_get_minus_infinity(self):
        evaluator = FitnessEvaluator([FitnessObjective.accuracy()])
        ok = make_fake_evaluation(_genome(8), accuracy=0.7)
        failed = CandidateEvaluation(genome=_genome(16), error="boom")
        results = evaluator.score_population([ok, failed])
        assert results[1].fitness == float("-inf")
        assert np.isnan(results[1].objectives["accuracy"])

    def test_score_single_against_reference(self):
        evaluator = FitnessEvaluator([FitnessObjective.accuracy()])
        reference = [make_fake_evaluation(_genome(8), accuracy=0.6)]
        candidate = make_fake_evaluation(_genome(16), accuracy=0.9)
        result = evaluator.score(candidate, reference)
        assert result.objectives["accuracy"] == pytest.approx(0.9)
        assert result.objective("accuracy") == pytest.approx(0.9)
        with pytest.raises(KeyError):
            result.objective("fpga_throughput")

    def test_duplicate_or_empty_objectives_rejected(self):
        with pytest.raises(ConfigurationError):
            FitnessEvaluator([])
        with pytest.raises(ConfigurationError):
            FitnessEvaluator([FitnessObjective.accuracy(), FitnessObjective.accuracy()])

    def test_empty_population_scores_to_empty_list(self):
        evaluator = FitnessEvaluator([FitnessObjective.accuracy()])
        assert evaluator.score_population([]) == []


class TestPareto:
    def test_dominates(self):
        assert dominates((2, 2), (1, 2))
        assert dominates((2, 3), (1, 2))
        assert not dominates((1, 2), (2, 1))
        assert not dominates((1, 1), (1, 1))
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    def test_frontier_indices(self):
        points = [(1, 5), (2, 4), (3, 3), (2, 2), (0, 6)]
        frontier = pareto_frontier_indices(points)
        assert set(frontier) == {0, 1, 2, 4}

    def test_pareto_frontier_sorted_by_first_objective(self):
        points = make_points(
            [{"a": 0.9, "t": 1e5}, {"a": 0.8, "t": 1e6}, {"a": 0.7, "t": 5e5}],
            lambda d: d["a"],
            lambda d: d["t"],
        )
        frontier = pareto_frontier(points)
        assert [p.payload["a"] for p in frontier] == [0.9, 0.8]

    def test_knee_point_balances_objectives(self):
        points = [
            ParetoPoint(values=(1.0, 0.0), payload="acc"),
            ParetoPoint(values=(0.0, 1.0), payload="thr"),
            ParetoPoint(values=(0.7, 0.7), payload="balanced"),
        ]
        assert knee_point(points).payload == "balanced"
        with pytest.raises(ValueError):
            knee_point([])

    def test_top_tradeoff_points_table_iv_style(self):
        frontier = [
            ParetoPoint(values=(0.99, 1e5), payload="best_acc"),
            ParetoPoint(values=(0.97, 2e6), payload="best_thr"),
            ParetoPoint(values=(0.98, 1e6), payload="middle"),
        ]
        rows = top_tradeoff_points(frontier, count=2, primary=0)
        assert rows[0].payload == "best_acc"
        assert rows[1].payload == "best_thr"
        assert top_tradeoff_points([], count=2) == []
        with pytest.raises(ValueError):
            top_tradeoff_points(frontier, count=0)

    def test_pareto_point_validation(self):
        with pytest.raises(ValueError):
            ParetoPoint(values=())
        with pytest.raises(ValueError):
            make_points([1, 2])


class TestEvaluationCache:
    def test_lookup_miss_then_hit(self):
        cache = EvaluationCache()
        genome = _genome(8)
        assert cache.lookup(genome) is None
        cache.store(make_fake_evaluation(genome, accuracy=0.8))
        hit = cache.lookup(genome)
        assert hit is not None
        assert hit.from_cache
        assert hit.accuracy == pytest.approx(0.8)
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == pytest.approx(0.5)

    def test_identical_parameters_share_an_entry(self):
        cache = EvaluationCache()
        cache.store(make_fake_evaluation(_genome(8), accuracy=0.8))
        equivalent = _genome(8)
        assert equivalent in cache
        assert len(cache) == 1

    def test_failed_evaluations_not_cached(self):
        cache = EvaluationCache()
        cache.store(CandidateEvaluation(genome=_genome(8), error="boom"))
        assert len(cache) == 0

    def test_capacity_bound_evicts_oldest(self):
        cache = EvaluationCache(max_entries=2)
        first, second, third = _genome(8), _genome(16), _genome(32)
        for genome in (first, second, third):
            cache.store(make_fake_evaluation(genome, accuracy=0.5))
        assert len(cache) == 2
        assert first not in cache
        assert second in cache and third in cache

    def test_clear_resets_everything(self):
        cache = EvaluationCache()
        cache.store(make_fake_evaluation(_genome(8), accuracy=0.5))
        cache.lookup(_genome(8))
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.lookups == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries=0)

    def test_lru_eviction_refreshes_recency_on_hits(self):
        """Regression: eviction must be least-recently-USED, not oldest-inserted."""
        cache = EvaluationCache(max_entries=2)
        first, second, third = _genome(8), _genome(16), _genome(32)
        cache.store(make_fake_evaluation(first, accuracy=0.5))
        cache.store(make_fake_evaluation(second, accuracy=0.5))
        # Touch the older entry, making `second` the least recently used...
        assert cache.lookup(first) is not None
        cache.store(make_fake_evaluation(third, accuracy=0.5))
        # ...so inserting a third entry evicts `second`, not `first`.
        assert first in cache
        assert second not in cache
        assert third in cache

    def test_lru_store_refreshes_recency_too(self):
        cache = EvaluationCache(max_entries=2)
        first, second, third = _genome(8), _genome(16), _genome(32)
        cache.store(make_fake_evaluation(first, accuracy=0.5))
        cache.store(make_fake_evaluation(second, accuracy=0.5))
        cache.store(make_fake_evaluation(first, accuracy=0.6))  # refresh
        cache.store(make_fake_evaluation(third, accuracy=0.5))
        assert first in cache
        assert second not in cache


class TestEvaluationCacheInFlight:
    def test_reserve_then_complete_publishes_to_waiters(self):
        import threading

        cache = EvaluationCache()
        genome = _genome(8)
        cached, owner = cache.lookup_or_reserve(genome)
        assert cached is None and owner
        assert cache.in_flight_count == 1

        waiter_results = []

        def waiter():
            evaluation, is_owner = cache.lookup_or_reserve(_genome(8))
            waiter_results.append((evaluation, is_owner))

        threads = [threading.Thread(target=waiter) for _ in range(3)]
        for thread in threads:
            thread.start()
        # Waiters are blocked on the in-flight evaluation, not re-evaluating.
        assert all(thread.is_alive() for thread in threads)
        cache.complete(genome, make_fake_evaluation(genome, accuracy=0.8))
        for thread in threads:
            thread.join(timeout=5)
        assert len(waiter_results) == 3
        for evaluation, is_owner in waiter_results:
            assert not is_owner
            assert evaluation.from_cache
            assert evaluation.accuracy == pytest.approx(0.8)
        assert cache.in_flight_count == 0
        assert cache.statistics.stores == 1
        assert cache.statistics.coalesced == 3

    def test_failed_completion_reaches_waiters_but_is_not_cached(self):
        import threading

        cache = EvaluationCache()
        genome = _genome(8)
        _, owner = cache.lookup_or_reserve(genome)
        assert owner
        results = []
        thread = threading.Thread(
            target=lambda: results.append(cache.lookup_or_reserve(_genome(8)))
        )
        thread.start()
        cache.complete(genome, CandidateEvaluation(genome=genome, error="boom"))
        thread.join(timeout=5)
        evaluation, is_owner = results[0]
        assert not is_owner
        assert evaluation.failed
        assert len(cache) == 0  # failures are never cached

    def test_abandon_lets_a_waiter_take_ownership(self):
        import threading

        cache = EvaluationCache()
        genome = _genome(8)
        _, owner = cache.lookup_or_reserve(genome)
        assert owner
        results = []
        thread = threading.Thread(
            target=lambda: results.append(cache.lookup_or_reserve(_genome(8)))
        )
        thread.start()
        cache.abandon(genome)
        thread.join(timeout=5)
        evaluation, is_owner = results[0]
        assert evaluation is None
        assert is_owner  # the waiter inherited the reservation
        assert cache.in_flight_count == 1
        cache.complete(genome, make_fake_evaluation(genome, accuracy=0.7))
        assert cache.in_flight_count == 0

    def test_cached_entry_short_circuits_reservation(self):
        cache = EvaluationCache()
        genome = _genome(8)
        cache.store(make_fake_evaluation(genome, accuracy=0.9))
        cached, owner = cache.lookup_or_reserve(genome)
        assert not owner
        assert cached.from_cache
        assert cache.in_flight_count == 0


def _individual(neurons: int, accuracy: float, fitness: float) -> Individual:
    from repro.core.fitness import FitnessResult

    evaluation = make_fake_evaluation(_genome(neurons), accuracy=accuracy, fpga_outputs=1e5)
    return Individual(
        genome=evaluation.genome,
        evaluation=evaluation,
        fitness=FitnessResult(fitness=fitness, objectives={"accuracy": accuracy}),
    )


class TestPopulation:
    def test_members_sorted_by_fitness(self):
        population = Population(capacity=4)
        population.add(_individual(8, 0.5, 0.5))
        population.add(_individual(16, 0.9, 0.9))
        population.add(_individual(32, 0.7, 0.7))
        assert population.best.fitness_value == pytest.approx(0.9)
        assert population.worst.fitness_value == pytest.approx(0.5)
        assert len(population) == 3
        assert not population.is_full

    def test_steady_state_replacement(self):
        population = Population(capacity=2)
        population.add(_individual(8, 0.5, 0.5))
        population.add(_individual(16, 0.7, 0.7))
        # a better newcomer evicts the worst member
        evicted = population.add(_individual(32, 0.9, 0.9))
        assert evicted is not None and evicted.fitness_value == pytest.approx(0.5)
        # a worse newcomer bounces off
        rejected = population.add(_individual(64, 0.1, 0.1))
        assert rejected is not None and rejected.fitness_value == pytest.approx(0.1)
        assert len(population) == 2

    def test_best_by_objective_and_mean_fitness(self):
        population = Population(capacity=4)
        population.add(_individual(8, 0.9, 0.2))
        population.add(_individual(16, 0.5, 0.8))
        assert population.best_by_objective("accuracy").evaluation.accuracy == pytest.approx(0.9)
        assert population.mean_fitness() == pytest.approx(0.5)

    def test_contains_genome(self):
        population = Population(capacity=4)
        member = _individual(8, 0.5, 0.5)
        population.add(member)
        assert population.contains_genome(member.genome)
        assert not population.contains_genome(_genome(64))

    def test_empty_population_errors(self):
        population = Population(capacity=2)
        with pytest.raises(SearchError):
            _ = population.best
        with pytest.raises(SearchError):
            Population(capacity=1)

    def test_rescore_requires_matching_lengths(self):
        population = Population(capacity=2)
        population.add(_individual(8, 0.5, 0.5))
        with pytest.raises(SearchError):
            population.rescore([])


class TestSelection:
    def _population(self) -> Population:
        population = Population(capacity=8)
        for index, fitness in enumerate([0.1, 0.3, 0.5, 0.7, 0.9]):
            population.add(_individual(8 * (index + 1), fitness, fitness))
        return population

    def test_tournament_prefers_fit_individuals(self, rng):
        population = self._population()
        scheme = TournamentSelection(tournament_size=3)
        picks = [scheme.select(population, rng).fitness_value for _ in range(200)]
        assert np.mean(picks) > 0.55

    def test_roulette_and_rank_return_members(self, rng):
        population = self._population()
        for scheme in (RouletteWheelSelection(), RankSelection()):
            individual = scheme.select(population, rng)
            assert individual in population.members

    def test_rank_selection_prefers_better_members(self, rng):
        population = self._population()
        picks = [RankSelection(selection_pressure=2.0).select(population, rng).fitness_value for _ in range(300)]
        assert np.mean(picks) > 0.55

    def test_select_pair_returns_distinct_parents(self, rng):
        population = self._population()
        first, second = TournamentSelection().select_pair(population, rng)
        assert first is not second

    def test_registry_and_validation(self):
        assert set(available_selection_schemes()) == {"tournament", "roulette", "rank", "nsga2"}
        assert isinstance(get_selection("tournament", tournament_size=2), TournamentSelection)
        scheme = RankSelection()
        assert get_selection(scheme) is scheme
        with pytest.raises(ValueError):
            get_selection("random_pick")
        with pytest.raises(ValueError):
            TournamentSelection(tournament_size=1)
        with pytest.raises(ValueError):
            RankSelection(selection_pressure=3.0)
        with pytest.raises(ValueError):
            NSGA2Selection(tournament_size=1)
        assert NSGA2Selection().tournament_size == 2  # classic binary default
        assert get_selection("nsga2", tournament_size=3).tournament_size == 3

    def test_selection_from_empty_population_raises(self, rng):
        population = Population(capacity=2)
        with pytest.raises(SearchError):
            TournamentSelection().select(population, rng)
