"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.genome import CoDesignSearchSpace, HardwareSearchSpace, MLPSearchSpace
from repro.core.mutation import CoDesignMutator
from repro.core.pareto import dominates, pareto_frontier_indices
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.gemm import block_gemm
from repro.hardware.gpu_model import GPUPerformanceModel
from repro.hardware.device import TITAN_X
from repro.hardware.systolic import GridConfig
from repro.nn.activations import get_activation
from repro.nn.layers import GemmShape
from repro.nn.mlp import MLPSpec
from repro.nn.preprocessing import one_hot

SETTINGS = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])

grid_strategy = st.builds(
    GridConfig,
    rows=st.sampled_from([1, 2, 4, 8, 16]),
    columns=st.sampled_from([1, 2, 4, 8, 16]),
    interleave_rows=st.sampled_from([1, 2, 4, 8, 16]),
    interleave_columns=st.sampled_from([1, 2, 4, 8, 16]),
    vector_width=st.sampled_from([1, 2, 4, 8]),
)

gemm_strategy = st.builds(
    GemmShape,
    m=st.integers(min_value=1, max_value=4096),
    k=st.integers(min_value=1, max_value=2048),
    n=st.integers(min_value=1, max_value=2048),
)


class TestBlockedGemmProperties:
    @SETTINGS
    @given(shape=gemm_strategy, config=grid_strategy)
    def test_padding_covers_problem_and_efficiency_bounded(self, shape, config):
        blocked = block_gemm(shape, config)
        assert blocked.padded_m >= shape.m
        assert blocked.padded_n >= shape.n
        assert blocked.padded_k >= shape.k
        assert blocked.padded_m < shape.m + config.block_m
        assert blocked.padded_n < shape.n + config.block_n
        assert blocked.padded_k < shape.k + config.block_k
        assert 0.0 < blocked.padding_efficiency <= 1.0
        assert blocked.useful_flops <= blocked.padded_flops

    @SETTINGS
    @given(shape=gemm_strategy, config=grid_strategy)
    def test_compute_cycles_account_for_all_padded_macs(self, shape, config):
        blocked = block_gemm(shape, config)
        assert blocked.compute_cycles * config.macs_per_cycle == (
            blocked.padded_m * blocked.padded_k * blocked.padded_n
        )

    @SETTINGS
    @given(shape=gemm_strategy, config=grid_strategy)
    def test_dram_traffic_is_at_least_the_result_bytes(self, shape, config):
        blocked = block_gemm(shape, config)
        assert blocked.dram_bytes >= 4 * shape.m * shape.n


class TestParetoProperties:
    vectors = st.lists(
        st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1e7, allow_nan=False)),
        min_size=1,
        max_size=30,
    )

    @SETTINGS
    @given(points=vectors)
    def test_frontier_members_are_mutually_non_dominating(self, points):
        frontier = pareto_frontier_indices(points)
        assert frontier  # at least one non-dominated point always exists
        for i in frontier:
            for j in frontier:
                if i != j:
                    assert not dominates(points[i], points[j])

    @SETTINGS
    @given(points=vectors)
    def test_every_non_frontier_point_is_dominated_by_some_frontier_point(self, points):
        frontier = set(pareto_frontier_indices(points))
        for index, point in enumerate(points):
            if index in frontier:
                continue
            assert any(dominates(points[i], point) for i in frontier)

    @SETTINGS
    @given(points=vectors)
    def test_dominance_is_irreflexive_and_antisymmetric(self, points):
        for a in points[:10]:
            assert not dominates(a, a)
            for b in points[:10]:
                if dominates(a, b):
                    assert not dominates(b, a)


class TestGenomeProperties:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_genomes_always_inside_space_and_feasible(self, seed):
        space = CoDesignSearchSpace()
        rng = np.random.default_rng(seed)
        genome = space.random_genome(rng, device=ARRIA10_GX1150)
        assert space.contains(genome)
        assert genome.hardware.fits(ARRIA10_GX1150)
        # serialization round-trip preserves identity and cache key
        from repro.core.genome import CoDesignGenome

        clone = CoDesignGenome.from_dict(genome.to_dict())
        assert clone == genome
        assert clone.cache_key() == genome.cache_key()

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mutation_preserves_space_membership_and_feasibility(self, seed):
        space = CoDesignSearchSpace(
            mlp_space=MLPSearchSpace(max_layers=3, layer_sizes=(16, 64, 256)),
            hardware_space=HardwareSearchSpace(),
        )
        rng = np.random.default_rng(seed)
        mutator = CoDesignMutator(space=space, device=ARRIA10_GX1150)
        genome = space.random_genome(rng, device=ARRIA10_GX1150)
        for _ in range(5):
            genome = mutator.mutate(genome, rng)
            assert space.contains(genome)
            assert genome.hardware.fits(ARRIA10_GX1150)


class TestNNProperties:
    @SETTINGS
    @given(
        batch=st.integers(min_value=1, max_value=64),
        features=st.integers(min_value=1, max_value=64),
        hidden=st.integers(min_value=1, max_value=64),
        classes=st.integers(min_value=2, max_value=10),
        activation=st.sampled_from(["relu", "tanh", "sigmoid", "elu"]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_mlp_outputs_are_valid_probability_rows(self, batch, features, hidden, classes, activation, seed):
        from repro.nn.mlp import MLP

        spec = MLPSpec(
            input_size=features,
            output_size=classes,
            hidden_sizes=(hidden,),
            activations=(activation,),
        )
        model = MLP(spec, seed=seed)
        rng = np.random.default_rng(seed)
        out = model.predict_proba(rng.normal(size=(batch, features)))
        assert out.shape == (batch, classes)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-6)

    @SETTINGS
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100),
    )
    def test_one_hot_round_trip(self, labels):
        labels = np.asarray(labels)
        encoded = one_hot(labels, 10)
        assert encoded.shape == (labels.size, 10)
        np.testing.assert_array_equal(np.argmax(encoded, axis=1), labels)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)

    @SETTINGS
    @given(
        name=st.sampled_from(["relu", "tanh", "sigmoid", "elu", "softplus", "leaky_relu"]),
        values=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=50),
    )
    def test_activations_are_finite_and_monotone_nondecreasing(self, name, values):
        activation = get_activation(name)
        z = np.sort(np.asarray(values, dtype=float))
        out = activation.forward(z)
        assert np.all(np.isfinite(out))
        assert np.all(np.diff(out) >= -1e-9)


class TestHardwareModelProperties:
    @SETTINGS
    @given(
        hidden=st.integers(min_value=8, max_value=512),
        batch=st.sampled_from([128, 256, 512, 1024, 2048]),
    )
    def test_gpu_metrics_invariants(self, hidden, batch):
        spec = MLPSpec(input_size=64, output_size=4, hidden_sizes=(hidden,), activations=("relu",))
        metrics = GPUPerformanceModel(TITAN_X).evaluate(spec, batch_size=batch)
        assert metrics.total_time_seconds > 0
        assert 0 <= metrics.efficiency <= 1
        assert metrics.effective_gflops <= metrics.potential_gflops
        assert metrics.outputs_per_second == pytest.approx(batch / metrics.total_time_seconds)

    @SETTINGS
    @given(
        rows=st.sampled_from([2, 4, 8, 16]),
        columns=st.sampled_from([2, 4, 8, 16]),
        vector=st.sampled_from([2, 4, 8]),
        hidden=st.integers(min_value=8, max_value=512),
    )
    def test_fpga_metrics_invariants(self, rows, columns, vector, hidden):
        from hypothesis import assume

        from repro.hardware.fpga_model import FPGAPerformanceModel

        config = GridConfig(rows=rows, columns=columns, interleave_rows=4, interleave_columns=4, vector_width=vector)
        assume(config.fits(ARRIA10_GX1150))
        spec = MLPSpec(input_size=128, output_size=8, hidden_sizes=(hidden,), activations=("relu",))
        metrics = FPGAPerformanceModel(ARRIA10_GX1150).evaluate(spec, config, batch_size=1024)
        assert metrics.total_time_seconds > 0
        assert metrics.latency_seconds <= metrics.total_time_seconds
        assert 0 < metrics.efficiency <= 1
        assert metrics.effective_gflops <= metrics.potential_gflops * (1 + 1e-9)
        assert metrics.potential_gflops <= config.peak_gflops(ARRIA10_GX1150) + 1e-9


class TestArenaProperties:
    """Arena leaderboard and metric invariants (see tests/test_arena.py)."""

    @SETTINGS
    @given(data=st.data())
    def test_leaderboard_ordering_independent_of_insertion_order(self, data, tmp_path_factory):
        from repro.scenarios import Leaderboard

        entries = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["nsga2", "random", "evolutionary"]),
                    st.sampled_from(["s0", "s1"]),
                    st.integers(min_value=0, max_value=2),
                    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                ),
                min_size=1,
                max_size=8,
                unique_by=lambda e: (e[0], e[1], e[2]),
            )
        )
        shuffled = data.draw(st.permutations(entries))
        base = tmp_path_factory.mktemp("lb")
        with Leaderboard(base / "a.sqlite") as board:
            for strategy, scenario, seed, hv in entries:
                board.record(strategy, scenario, seed, hypervolume=hv)
            first = board.rows()
        with Leaderboard(base / "b.sqlite") as board:
            for strategy, scenario, seed, hv in shuffled:
                board.record(strategy, scenario, seed, hypervolume=hv)
            second = board.rows()
        assert first == second
        # Standings sort is total: scenario asc, then hypervolume desc,
        # ties broken deterministically by (strategy, seed).
        keys = [
            (row["scenario"], -row["hypervolume"], row["strategy"], row["seed"])
            for row in first
        ]
        assert keys == sorted(keys)

    @SETTINGS
    @given(
        frontier=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
            ),
            max_size=6,
        ),
        target=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    )
    def test_artifact_metrics_finite_and_non_negative(self, frontier, target):
        import math

        from repro.experiment.artifacts import RunArtifact
        from repro.scenarios import ScenarioPack, artifact_metrics

        artifact = RunArtifact(
            run_id="r",
            dataset="credit_g_like",
            objective="nsga2:codesign",
            seed=0,
            frontier=[
                {"accuracy": accuracy, "fpga_throughput": throughput}
                for accuracy, throughput in frontier
            ],
            statistics={"models_evaluated": len(frontier)},
            best_accuracy=max((a for a, _ in frontier), default=0.0),
        )
        pack = ScenarioPack(
            name="property-metrics-pack",
            description="unregistered scratch pack",
            datasets=("credit_g_like",),
            target_accuracy=target,
        )
        metrics = artifact_metrics(artifact, pack)
        assert math.isfinite(metrics["hypervolume"])
        assert metrics["hypervolume"] >= 0.0
        assert metrics["evals_to_target"] >= 0
        assert metrics["frontier_size"] == len(frontier)

    @SETTINGS
    @given(
        accuracies=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=20
        )
    )
    def test_frontier_archive_best_accuracy_is_running_max(self, accuracies):
        from repro.core.candidate import CandidateEvaluation
        from repro.core.fitness import FitnessObjective
        from repro.core.frontier import FrontierArchive
        from repro.core.genome import CoDesignSearchSpace

        space = CoDesignSearchSpace()
        rng = np.random.default_rng(0)
        archive = FrontierArchive(objectives=[FitnessObjective.accuracy()])
        running = 0.0
        for accuracy in accuracies:
            evaluation = CandidateEvaluation(
                genome=space.random_genome(rng), accuracy=accuracy
            )
            archive.observe(evaluation)
            running = max(running, accuracy)
            assert archive.best_accuracy == running
        snapshots = archive.snapshots
        best = [snapshot.best_accuracy for snapshot in snapshots]
        assert best == sorted(best)
