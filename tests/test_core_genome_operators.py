"""Unit tests for repro.core.genome, mutation and crossover."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.crossover import (
    CoDesignCrossover,
    crossover_hardware_fields,
    crossover_mlp_layers,
    crossover_swap_halves,
)
from repro.core.errors import GenomeError
from repro.core.genome import (
    CoDesignGenome,
    CoDesignSearchSpace,
    HardwareGenome,
    HardwareSearchSpace,
    MLPGenome,
    MLPSearchSpace,
)
from repro.core.mutation import (
    CoDesignMutator,
    MutationConfig,
    mutate_activation,
    mutate_add_layer,
    mutate_bias,
    mutate_fpga_batch,
    mutate_grid_dimension,
    mutate_layer_size,
    mutate_remove_layer,
    mutate_vector_width,
)
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.systolic import GridConfig


class TestMLPGenome:
    def test_to_spec_materializes_dimensions(self):
        genome = MLPGenome(hidden_layers=(64, 32), activations=("relu", "tanh"))
        spec = genome.to_spec(input_size=100, output_size=5)
        assert spec.layer_sizes == (100, 64, 32, 5)
        assert spec.activations == ("relu", "tanh")

    def test_counts(self):
        genome = MLPGenome(hidden_layers=(64, 32), activations=("relu", "tanh"), use_bias=False)
        assert genome.num_hidden_layers == 2
        assert genome.total_hidden_neurons == 96

    def test_round_trip_dict(self):
        genome = MLPGenome(hidden_layers=(8,), activations=("elu",), use_bias=False)
        assert MLPGenome.from_dict(genome.to_dict()) == genome

    def test_validation(self):
        with pytest.raises(GenomeError):
            MLPGenome(hidden_layers=(0,), activations=("relu",))
        with pytest.raises(GenomeError):
            MLPGenome(hidden_layers=(8, 8), activations=("relu",))
        with pytest.raises(GenomeError):
            MLPGenome(hidden_layers=(8,), activations=("bogus",))


class TestHardwareAndCoDesignGenome:
    def test_hardware_genome_fits_device(self, small_grid):
        genome = HardwareGenome(grid=small_grid, batch_size=1024)
        assert genome.fits(ARRIA10_GX1150)
        assert genome.run_samples == 1024

    def test_round_trip_dicts(self, sample_genome):
        assert CoDesignGenome.from_dict(sample_genome.to_dict()) == sample_genome
        assert HardwareGenome.from_dict(sample_genome.hardware.to_dict()) == sample_genome.hardware

    def test_cache_key_stable_and_distinguishing(self, sample_genome):
        same = CoDesignGenome.from_dict(sample_genome.to_dict())
        assert same.cache_key() == sample_genome.cache_key()
        different = sample_genome.with_mlp(
            MLPGenome(hidden_layers=(32,), activations=("relu",))
        )
        assert different.cache_key() != sample_genome.cache_key()

    def test_with_halves(self, sample_genome, small_grid):
        new_hardware = HardwareGenome(grid=small_grid, batch_size=512)
        updated = sample_genome.with_hardware(new_hardware)
        assert updated.hardware.batch_size == 512
        assert updated.mlp == sample_genome.mlp

    def test_validation(self, small_grid):
        with pytest.raises(GenomeError):
            HardwareGenome(grid=small_grid, batch_size=0)
        with pytest.raises(GenomeError):
            CoDesignGenome(
                mlp=MLPGenome(hidden_layers=(8,), activations=("relu",)),
                hardware=HardwareGenome(grid=small_grid),
                gpu_batch_size=0,
            )


class TestSearchSpaces:
    def test_random_genomes_are_inside_the_space(self, small_search_space, rng):
        for _ in range(50):
            genome = small_search_space.random_genome(rng, device=ARRIA10_GX1150)
            assert small_search_space.contains(genome)
            assert genome.hardware.fits(ARRIA10_GX1150)

    def test_contains_rejects_out_of_space_values(self, small_search_space, sample_genome):
        # sample_genome uses layer sizes 16/8 which are inside, but activation tanh/relu ok;
        # hardware grid 8x8 interleave 4x4 vector 4 is inside; batch 1024 inside; gpu 256 inside.
        assert small_search_space.contains(sample_genome)
        outside = sample_genome.with_mlp(
            MLPGenome(hidden_layers=(1024,), activations=("relu",))
        )
        assert not small_search_space.contains(outside)

    def test_space_size_formula(self):
        space = MLPSearchSpace(min_layers=1, max_layers=2, layer_sizes=(8, 16), activations=("relu",), allow_bias_toggle=False)
        # depth 1: 2 combos; depth 2: 4 combos -> 6
        assert space.size == 6
        hardware = HardwareSearchSpace(batch_sizes=(256,))
        assert hardware.size == hardware.grid_space.size
        joint = CoDesignSearchSpace(mlp_space=space, hardware_space=hardware, gpu_batch_sizes=(128,))
        assert joint.size == space.size * hardware.size

    def test_space_validation(self):
        with pytest.raises(GenomeError):
            MLPSearchSpace(min_layers=3, max_layers=2)
        with pytest.raises(GenomeError):
            MLPSearchSpace(layer_sizes=())
        with pytest.raises(GenomeError):
            MLPSearchSpace(activations=("bogus",))
        with pytest.raises(GenomeError):
            HardwareSearchSpace(batch_sizes=(0,))
        with pytest.raises(GenomeError):
            CoDesignSearchSpace(gpu_batch_sizes=())


class TestMutationOperators:
    def test_layer_size_mutation_changes_one_layer(self, small_search_space, rng):
        genome = MLPGenome(hidden_layers=(8, 16), activations=("relu", "relu"))
        mutated = mutate_layer_size(genome, small_search_space, rng)
        assert mutated.num_hidden_layers == 2
        assert mutated != genome
        differences = sum(1 for a, b in zip(genome.hidden_layers, mutated.hidden_layers) if a != b)
        assert differences == 1

    def test_activation_mutation(self, small_search_space, rng):
        genome = MLPGenome(hidden_layers=(8,), activations=("relu",))
        mutated = mutate_activation(genome, small_search_space, rng)
        assert mutated.activations[0] in small_search_space.mlp_space.activations
        assert mutated.activations[0] != "relu"

    def test_add_and_remove_layer_respect_bounds(self, small_search_space, rng):
        genome = MLPGenome(hidden_layers=(8,), activations=("relu",))
        grown = mutate_add_layer(genome, small_search_space, rng)
        assert grown.num_hidden_layers == 2
        # max_layers is 2 in the small space, so adding again is a no-op
        assert mutate_add_layer(grown, small_search_space, rng).num_hidden_layers == 2
        shrunk = mutate_remove_layer(grown, small_search_space, rng)
        assert shrunk.num_hidden_layers == 1
        # min of 1 layer enforced
        assert mutate_remove_layer(shrunk, small_search_space, rng).num_hidden_layers == 1

    def test_bias_mutation_flips_flag(self, small_search_space, rng):
        genome = MLPGenome(hidden_layers=(8,), activations=("relu",), use_bias=True)
        assert mutate_bias(genome, small_search_space, rng).use_bias is False

    def test_hardware_mutations_stay_in_space(self, small_search_space, rng):
        hardware = HardwareGenome(grid=GridConfig(4, 4, 2, 2, 2), batch_size=512)
        for operator in (mutate_grid_dimension, mutate_vector_width, mutate_fpga_batch):
            mutated = operator(hardware, small_search_space, rng)
            assert small_search_space.hardware_space.contains(mutated)

    def test_mutation_config_validation_and_presets(self):
        with pytest.raises(ValueError):
            MutationConfig(layer_size=-1)
        accuracy_only = MutationConfig.accuracy_only()
        assert accuracy_only.grid_dimension == 0.0
        hardware_only = MutationConfig.hardware_only()
        assert hardware_only.layer_size == 0.0

    def test_composite_mutator_produces_feasible_changes(self, small_search_space, sample_genome, rng):
        mutator = CoDesignMutator(space=small_search_space, device=ARRIA10_GX1150)
        changed = 0
        for _ in range(30):
            mutated = mutator.mutate(sample_genome, rng)
            assert mutated.hardware.fits(ARRIA10_GX1150)
            if mutated != sample_genome:
                changed += 1
        assert changed > 25

    def test_accuracy_only_mutator_never_touches_hardware(self, small_search_space, sample_genome, rng):
        mutator = CoDesignMutator(
            space=small_search_space, config=MutationConfig.accuracy_only(), device=ARRIA10_GX1150
        )
        for _ in range(30):
            mutated = mutator.mutate(sample_genome, rng)
            assert mutated.hardware == sample_genome.hardware
            assert mutated.gpu_batch_size == sample_genome.gpu_batch_size


class TestCrossover:
    def test_mlp_crossover_inherits_layers_from_parents(self, rng):
        parent_a = MLPGenome(hidden_layers=(8, 8), activations=("relu", "relu"))
        parent_b = MLPGenome(hidden_layers=(32, 32), activations=("tanh", "tanh"))
        child = crossover_mlp_layers(parent_a, parent_b, rng)
        assert child.num_hidden_layers == 2
        for size in child.hidden_layers:
            assert size in (8, 32)
        for activation in child.activations:
            assert activation in ("relu", "tanh")

    def test_hardware_crossover_fields_from_parents(self, rng):
        parent_a = HardwareGenome(grid=GridConfig(2, 2, 2, 2, 2), batch_size=256)
        parent_b = HardwareGenome(grid=GridConfig(8, 8, 4, 4, 4), batch_size=1024)
        child = crossover_hardware_fields(parent_a, parent_b, rng)
        assert child.grid.rows in (2, 8)
        assert child.grid.vector_width in (2, 4)
        assert child.batch_size in (256, 1024)

    def test_swap_halves_takes_whole_halves(self, rng, small_grid):
        genome_a = CoDesignGenome(
            mlp=MLPGenome(hidden_layers=(8,), activations=("relu",)),
            hardware=HardwareGenome(grid=GridConfig(2, 2, 2, 2, 2), batch_size=256),
        )
        genome_b = CoDesignGenome(
            mlp=MLPGenome(hidden_layers=(32, 16), activations=("tanh", "tanh")),
            hardware=HardwareGenome(grid=small_grid, batch_size=1024),
        )
        child = crossover_swap_halves(genome_a, genome_b, rng)
        assert (child.mlp, child.hardware) in (
            (genome_a.mlp, genome_b.hardware),
            (genome_b.mlp, genome_a.hardware),
        )

    def test_composite_crossover_keeps_children_feasible(self, rng, small_search_space):
        crossover = CoDesignCrossover(device=ARRIA10_GX1150)
        parent_a = small_search_space.random_genome(rng, device=ARRIA10_GX1150)
        parent_b = small_search_space.random_genome(rng, device=ARRIA10_GX1150)
        for _ in range(20):
            child = crossover.recombine(parent_a, parent_b, rng)
            assert child.hardware.fits(ARRIA10_GX1150)

    def test_crossover_probability_validation(self):
        with pytest.raises(ValueError):
            CoDesignCrossover(swap_probability=1.5)
