"""Unit and integration tests for the evolutionary engine, configuration file
and the high-level CoDesignSearch / RandomSearch front-ends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import EvaluationCache
from repro.core.callbacks import Callback, ProgressLogger, SearchHistory
from repro.core.candidate import CandidateEvaluation
from repro.core.config import ECADConfig, HardwareTargetConfig, NNAStructureConfig, OptimizationTargetConfig
from repro.core.engine import EngineConfig, EvolutionaryEngine
from repro.core.errors import ConfigurationError, SearchError
from repro.core.fitness import FitnessEvaluator, FitnessObjective
from repro.core.search import CoDesignSearch, RandomSearch
from repro.hardware.device import ARRIA10_GX1150


def _fitness() -> FitnessEvaluator:
    return FitnessEvaluator([FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()])


class TestEngineConfig:
    def test_defaults_are_valid(self):
        EngineConfig()

    def test_validation(self):
        with pytest.raises(SearchError):
            EngineConfig(population_size=1)
        with pytest.raises(SearchError):
            EngineConfig(population_size=10, max_evaluations=5)
        with pytest.raises(SearchError):
            EngineConfig(crossover_probability=1.5)
        with pytest.raises(SearchError):
            EngineConfig(max_stagnation_steps=-1)

    def test_tournament_size_validation(self):
        with pytest.raises(SearchError):
            EngineConfig(tournament_size=0)
        with pytest.raises(SearchError):
            EngineConfig(tournament_size=-3)
        with pytest.raises(SearchError):
            EngineConfig(population_size=4, tournament_size=5)
        # At most the whole population is legal.
        EngineConfig(population_size=4, tournament_size=4)

    def test_nsga2_tournament_size_validation(self):
        with pytest.raises(SearchError):
            EngineConfig(nsga2_tournament_size=1)
        with pytest.raises(SearchError):
            EngineConfig(population_size=4, nsga2_tournament_size=5)
        assert EngineConfig().nsga2_tournament_size == 2  # classic binary
        EngineConfig(population_size=4, nsga2_tournament_size=4)

    def test_eval_parallelism_validation(self):
        with pytest.raises(SearchError):
            EngineConfig(eval_parallelism=0)
        with pytest.raises(SearchError):
            EngineConfig(eval_parallelism=-2)
        EngineConfig(eval_parallelism=8)


class TestEvolutionaryEngine:
    def _engine(self, small_search_space, fake_evaluator, **overrides) -> EvolutionaryEngine:
        config = EngineConfig(
            population_size=overrides.pop("population_size", 6),
            max_evaluations=overrides.pop("max_evaluations", 40),
            seed=overrides.pop("seed", 0),
            **overrides,
        )
        return EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=_fitness(),
            config=config,
            device=ARRIA10_GX1150,
        )

    def test_run_produces_full_population_and_history(self, small_search_space, fake_evaluator):
        engine = self._engine(small_search_space, fake_evaluator)
        result = engine.run()
        assert len(result.population) == 6
        assert len(result.history) == result.statistics.models_generated
        assert result.statistics.models_generated == 40
        assert result.statistics.models_evaluated + result.statistics.cache_hits == 40
        assert result.best.fitness_value >= result.population.worst.fitness_value

    def test_search_improves_over_initial_population(self, small_search_space, fake_evaluator):
        """Scored in one common reference frame, the final population's best must
        not be worse than the best of the random initial population."""
        engine = self._engine(small_search_space, fake_evaluator, max_evaluations=60)
        result = engine.run()
        fitness = _fitness()
        all_evaluations = result.history.evaluations()
        scores = fitness.score_population(all_evaluations)
        initial_best = max(score.fitness for score in scores[:6])
        final_keys = {member.genome.cache_key() for member in result.population}
        final_best = max(
            score.fitness
            for evaluation, score in zip(all_evaluations, scores)
            if evaluation.genome.cache_key() in final_keys
        )
        assert final_best >= initial_best - 1e-9

    def test_same_seed_reproduces_search(self, small_search_space, fake_evaluator):
        result_a = self._engine(small_search_space, fake_evaluator, seed=7).run()
        result_b = self._engine(small_search_space, fake_evaluator, seed=7).run()
        keys_a = [r.evaluation.genome.cache_key() for r in result_a.history.records]
        keys_b = [r.evaluation.genome.cache_key() for r in result_b.history.records]
        assert keys_a == keys_b

    def test_cache_hits_counted_for_duplicate_candidates(self, small_search_space, fake_evaluator):
        engine = self._engine(
            small_search_space,
            fake_evaluator,
            max_evaluations=80,
            avoid_duplicate_genomes=False,
        )
        result = engine.run()
        # with duplicates allowed in a tiny space, the cache must be exercised
        assert result.statistics.cache_hits > 0
        assert result.statistics.models_evaluated < result.statistics.models_generated

    def test_evaluator_failures_do_not_crash_the_search(self, small_search_space):
        calls = {"count": 0}

        def flaky_evaluator(genome):
            calls["count"] += 1
            if calls["count"] % 3 == 0:
                raise RuntimeError("simulated worker failure")
            from tests.conftest import make_fake_evaluation

            return make_fake_evaluation(genome, accuracy=0.7, fpga_outputs=1e6, gpu_outputs=1e6)

        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=flaky_evaluator,
            fitness=_fitness(),
            config=EngineConfig(population_size=4, max_evaluations=20, seed=0),
            device=ARRIA10_GX1150,
        )
        result = engine.run()
        failed = [r for r in result.history.records if r.evaluation.failed]
        assert failed  # failures were recorded...
        assert not result.best.evaluation.failed  # ...but never became the best candidate

    def test_generational_mode_runs(self, small_search_space, fake_evaluator):
        engine = self._engine(small_search_space, fake_evaluator, steady_state=False, max_evaluations=30)
        result = engine.run()
        assert result.statistics.models_generated <= 30
        assert len(result.population) >= 2

    def test_stagnation_early_stop(self, small_search_space):
        def constant_evaluator(genome):
            from tests.conftest import make_fake_evaluation

            return make_fake_evaluation(genome, accuracy=0.5, fpga_outputs=1e5, gpu_outputs=1e5)

        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=constant_evaluator,
            fitness=_fitness(),
            config=EngineConfig(
                population_size=4, max_evaluations=200, seed=0, max_stagnation_steps=5
            ),
            device=ARRIA10_GX1150,
        )
        result = engine.run()
        assert result.statistics.models_generated < 200

    def test_custom_callback_hooks_invoked(self, small_search_space, fake_evaluator):
        events = {"start": 0, "evaluations": 0, "steps": 0, "end": 0}

        class Recorder(Callback):
            def on_search_start(self, population):
                events["start"] += 1

            def on_evaluation(self, evaluation, fitness, step):
                events["evaluations"] += 1

            def on_step_end(self, population, step):
                events["steps"] += 1

            def on_search_end(self, population):
                events["end"] += 1

        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=_fitness(),
            config=EngineConfig(population_size=4, max_evaluations=12, seed=0),
            device=ARRIA10_GX1150,
            callbacks=[Recorder()],
        )
        engine.run()
        assert events["start"] == 1
        assert events["end"] == 1
        assert events["evaluations"] == 12
        assert events["steps"] == 8  # 12 evaluations - 4 initial population members

    def test_serial_statistics_report_throughput_fields(self, small_search_space, fake_evaluator):
        result = self._engine(small_search_space, fake_evaluator).run()
        stats = result.statistics
        assert stats.peak_in_flight == 1
        assert stats.evaluations_per_second > 0
        as_dict = stats.to_dict()
        assert as_dict["peak_in_flight"] == 1
        assert as_dict["evaluations_per_second"] == stats.evaluations_per_second

    def test_progress_logger_prints(self, small_search_space, fake_evaluator, capsys):
        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=_fitness(),
            config=EngineConfig(population_size=4, max_evaluations=12, seed=0),
            device=ARRIA10_GX1150,
            callbacks=[ProgressLogger(interval=1)],
        )
        engine.run()
        assert "best fitness" in capsys.readouterr().out


class TestAsyncEvolutionaryEngine:
    """The asynchronous batched pipeline (eval_parallelism > 1)."""

    def _engine(self, small_search_space, evaluator, **overrides) -> EvolutionaryEngine:
        config = EngineConfig(
            population_size=overrides.pop("population_size", 6),
            max_evaluations=overrides.pop("max_evaluations", 40),
            seed=overrides.pop("seed", 0),
            eval_parallelism=overrides.pop("eval_parallelism", 4),
            **overrides,
        )
        return EvolutionaryEngine(
            space=small_search_space,
            evaluator=evaluator,
            fitness=_fitness(),
            config=config,
            device=ARRIA10_GX1150,
        )

    def test_async_run_respects_budget_and_fills_population(self, small_search_space, fake_evaluator):
        result = self._engine(small_search_space, fake_evaluator).run()
        stats = result.statistics
        assert stats.models_generated == 40
        assert stats.models_evaluated + stats.cache_hits == 40
        assert len(result.history) == 40
        assert len(result.population) == 6
        assert not result.best.evaluation.failed
        assert 1 <= stats.peak_in_flight <= 4
        assert stats.evaluations_per_second > 0

    def test_async_keeps_multiple_evaluations_in_flight(self, small_search_space):
        import threading as _threading
        import time as _time

        in_flight = {"now": 0, "peak": 0}
        lock = _threading.Lock()

        def slow_evaluator(genome):
            with lock:
                in_flight["now"] += 1
                in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            _time.sleep(0.01)
            with lock:
                in_flight["now"] -= 1
            from tests.conftest import make_fake_evaluation

            neurons = genome.mlp.total_hidden_neurons
            return make_fake_evaluation(genome, min(0.99, 0.5 + neurons / 200.0), 1e6, 1e6)

        result = self._engine(small_search_space, slow_evaluator, eval_parallelism=4).run()
        assert in_flight["peak"] > 1
        assert result.statistics.peak_in_flight > 1

    def test_concurrent_duplicates_trigger_exactly_one_fresh_evaluation(self, small_search_space):
        import threading as _threading
        import time as _time

        calls: dict[str, int] = {}
        lock = _threading.Lock()

        def counting_evaluator(genome):
            with lock:
                calls[genome.cache_key()] = calls.get(genome.cache_key(), 0) + 1
            _time.sleep(0.003)
            from tests.conftest import make_fake_evaluation

            neurons = genome.mlp.total_hidden_neurons
            return make_fake_evaluation(genome, min(0.99, 0.5 + neurons / 200.0), 1e6, 1e6)

        result = self._engine(
            small_search_space,
            counting_evaluator,
            max_evaluations=80,
            avoid_duplicate_genomes=False,
        ).run()
        stats = result.statistics
        # Duplicates occurred in a tiny space...
        assert stats.cache_hits > 0
        # ...but no genome was ever evaluated twice: repeats were answered by
        # the cache or coalesced onto the in-flight evaluation.
        assert max(calls.values()) == 1
        assert stats.models_evaluated == len(calls)
        assert stats.models_evaluated + stats.cache_hits == stats.models_generated

    def test_async_evaluator_failures_do_not_crash_the_search(self, small_search_space):
        import threading as _threading

        counter = {"count": 0}
        lock = _threading.Lock()

        def flaky_evaluator(genome):
            with lock:
                counter["count"] += 1
                count = counter["count"]
            if count % 3 == 0:
                raise RuntimeError("simulated worker failure")
            from tests.conftest import make_fake_evaluation

            return make_fake_evaluation(genome, accuracy=0.7, fpga_outputs=1e6, gpu_outputs=1e6)

        result = self._engine(
            small_search_space, flaky_evaluator, population_size=4, max_evaluations=20
        ).run()
        failed = [r for r in result.history.records if r.evaluation.failed]
        assert failed
        assert not result.best.evaluation.failed

    def test_async_stagnation_early_stop(self, small_search_space):
        def constant_evaluator(genome):
            from tests.conftest import make_fake_evaluation

            return make_fake_evaluation(genome, accuracy=0.5, fpga_outputs=1e5, gpu_outputs=1e5)

        result = self._engine(
            small_search_space,
            constant_evaluator,
            population_size=4,
            max_evaluations=200,
            max_stagnation_steps=5,
        ).run()
        assert result.statistics.models_generated < 200

    def test_default_parallelism_uses_the_serial_path(self, small_search_space, fake_evaluator):
        """eval_parallelism=1 must reproduce the serial engine bit for bit."""
        serial = self._engine(small_search_space, fake_evaluator, eval_parallelism=1, seed=11).run()
        again = self._engine(small_search_space, fake_evaluator, eval_parallelism=1, seed=11).run()
        keys_a = [r.evaluation.genome.cache_key() for r in serial.history.records]
        keys_b = [r.evaluation.genome.cache_key() for r in again.history.records]
        assert keys_a == keys_b
        assert serial.best.genome.cache_key() == again.best.genome.cache_key()
        assert serial.statistics.to_dict().keys() == again.statistics.to_dict().keys()
        for field in ("models_generated", "models_evaluated", "cache_hits", "peak_in_flight"):
            assert getattr(serial.statistics, field) == getattr(again.statistics, field)


class TestSearchHistory:
    def test_series_and_queries(self, small_search_space, fake_evaluator):
        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=_fitness(),
            config=EngineConfig(population_size=4, max_evaluations=16, seed=0),
            device=ARRIA10_GX1150,
        )
        result = engine.run()
        history: SearchHistory = result.history
        pairs = history.accuracy_throughput_series(device="fpga")
        assert len(pairs) == 16
        assert all(0 <= accuracy <= 1 for accuracy, _ in pairs)
        assert history.best_accuracy() == max(a for a, _ in pairs)
        assert len(history.unique_evaluations()) <= len(history)
        assert len(history.best_fitness_trace) > 0
        with pytest.raises(ValueError):
            history.accuracy_throughput_series(device="tpu")


class TestECADConfig:
    def test_template_from_dataset_sets_dimensions_and_protocol(self, tiny_dataset, tiny_presplit_dataset):
        config = ECADConfig.template_for_dataset(tiny_dataset)
        assert config.nna.input_size == tiny_dataset.num_features
        assert config.nna.output_size == tiny_dataset.num_classes
        assert config.evaluation_protocol == "10-fold"
        presplit = ECADConfig.template_for_dataset(tiny_presplit_dataset)
        assert presplit.evaluation_protocol == "1-fold"

    def test_round_trip_json_file(self, tiny_dataset, tmp_path):
        config = ECADConfig.template_for_dataset(tiny_dataset, population_size=10, max_evaluations=50)
        path = tmp_path / "config.json"
        config.save(path)
        loaded = ECADConfig.load(path)
        assert loaded == config

    def test_load_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ECADConfig.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            ECADConfig.load(bad)
        incomplete = tmp_path / "incomplete.json"
        incomplete.write_text('{"dataset_name": "x"}')
        with pytest.raises(ConfigurationError):
            ECADConfig.load(incomplete)

    def test_to_search_space_and_engine_config(self, tiny_dataset):
        config = ECADConfig.template_for_dataset(tiny_dataset, population_size=7, max_evaluations=21, seed=3)
        space = config.to_search_space()
        assert space.mlp_space.layer_sizes == config.nna.layer_sizes
        engine_config = config.to_engine_config()
        assert engine_config.population_size == 7
        assert engine_config.max_evaluations == 21
        assert engine_config.seed == 3

    def test_mutation_config_follows_objectives(self, tiny_dataset):
        accuracy_only = ECADConfig.template_for_dataset(
            tiny_dataset, optimization=OptimizationTargetConfig.accuracy_only()
        )
        assert accuracy_only.to_mutation_config().grid_dimension == 0.0
        codesign = ECADConfig.template_for_dataset(
            tiny_dataset, optimization=OptimizationTargetConfig.accuracy_and_throughput()
        )
        assert codesign.to_mutation_config().grid_dimension > 0.0

    def test_hardware_target_resolution(self):
        target = HardwareTargetConfig(fpga="stratix10", ddr_banks=2, clock_mhz=300.0, gpu="m5000")
        device = target.fpga_device()
        assert device.ddr_banks == 2
        assert device.clock_mhz == 300.0
        assert target.gpu_device().name == "NVIDIA Quadro M5000"
        assert HardwareTargetConfig(gpu="").gpu_device() is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NNAStructureConfig(input_size=0, output_size=2)
        with pytest.raises(ConfigurationError):
            OptimizationTargetConfig(objectives=())
        with pytest.raises(ConfigurationError):
            ECADConfig(
                dataset_name="x",
                nna=NNAStructureConfig(input_size=4, output_size=2),
                evaluation_protocol="5-fold",
            )


class TestCoDesignSearchFrontEnd:
    def test_full_search_with_fake_evaluator(self, tiny_dataset, fake_evaluator):
        config = ECADConfig.template_for_dataset(
            tiny_dataset, population_size=5, max_evaluations=20, seed=0, training_epochs=2
        )
        search = CoDesignSearch(tiny_dataset, config=config)
        result = search.run(evaluator=fake_evaluator)
        assert 0 <= result.best_accuracy <= 1
        assert result.frontier
        assert result.statistics.models_generated == 20
        rows = result.pareto_rows(count=2)
        assert rows[0].accuracy >= rows[-1].accuracy

    def test_configuration_dataset_mismatch_rejected(self, tiny_dataset, tiny_presplit_dataset):
        config = ECADConfig.template_for_dataset(tiny_presplit_dataset)
        with pytest.raises(ConfigurationError):
            CoDesignSearch(tiny_dataset, config=config)

    def test_real_end_to_end_search_on_tiny_dataset(self, tiny_dataset):
        """Slowest test in the suite: the full master/worker pipeline, few evaluations."""
        config = ECADConfig.template_for_dataset(
            tiny_dataset,
            population_size=4,
            max_evaluations=8,
            seed=0,
            training_epochs=3,
            evaluation_protocol="1-fold",
        )
        result = CoDesignSearch(tiny_dataset, config=config).run()
        assert result.best_accuracy > 0.5
        best = result.best_accuracy_candidate
        assert best.fpga_metrics is not None
        assert best.gpu_metrics is not None
        assert best.synthesis is not None
        assert result.statistics.average_evaluation_seconds > 0


class TestRandomSearch:
    def test_random_search_baseline(self, small_search_space, fake_evaluator):
        search = RandomSearch(
            space=small_search_space,
            evaluator=fake_evaluator,
            objectives=[FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()],
            max_evaluations=30,
            seed=0,
            device=ARRIA10_GX1150,
        )
        result = search.run()
        assert len(result.history) == 30
        assert result.frontier
        assert result.statistics.models_generated == 30

    def test_random_search_validation(self, small_search_space, fake_evaluator):
        with pytest.raises(ConfigurationError):
            RandomSearch(small_search_space, fake_evaluator, max_evaluations=0)

    def test_evolution_at_least_matches_random_on_fake_landscape(
        self, small_search_space, fake_evaluator
    ):
        """The steady-state engine should not lose to random search on the same budget."""
        objectives = [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]
        random_result = RandomSearch(
            small_search_space,
            fake_evaluator,
            objectives=objectives,
            max_evaluations=40,
            seed=1,
            device=ARRIA10_GX1150,
        ).run()
        engine = EvolutionaryEngine(
            space=small_search_space,
            evaluator=fake_evaluator,
            fitness=FitnessEvaluator(objectives),
            config=EngineConfig(population_size=6, max_evaluations=40, seed=1),
            device=ARRIA10_GX1150,
        )
        evolved = engine.run()
        evolved_best_throughput = max(
            r.evaluation.fpga_outputs_per_second for r in evolved.history.records
        )
        random_best_throughput = max(
            r.evaluation.fpga_outputs_per_second for r in random_result.history.records
        )
        assert evolved_best_throughput >= 0.8 * random_best_throughput


class TestRandomSearchAsync:
    """RandomSearch routes through the evaluator's submit/as_completed API."""

    class _AsyncEvaluator:
        """Futures-capable wrapper around a plain evaluator function."""

        def __init__(self, function, max_workers: int = 4) -> None:
            from repro.workers.backends import ThreadPoolBackend

            self.function = function
            self.backend = ThreadPoolBackend(max_workers=max_workers)
            self.submitted = 0

        def __call__(self, genome):
            return self.function(genome)

        def submit(self, genome):
            self.submitted += 1
            return self.backend.submit(self.function, genome)

        def as_completed(self, futures):
            return self.backend.as_completed(futures)

    def test_async_path_matches_serial_results(self, small_search_space, fake_evaluator):
        def run(evaluator):
            return RandomSearch(
                space=small_search_space,
                evaluator=evaluator,
                objectives=[FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()],
                max_evaluations=30,
                seed=0,
                device=ARRIA10_GX1150,
            ).run()

        serial = run(fake_evaluator)
        async_evaluator = self._AsyncEvaluator(fake_evaluator)
        parallel = run(async_evaluator)
        async_evaluator.backend.shutdown()

        assert parallel.best_accuracy == serial.best_accuracy
        assert len(parallel.history) == len(serial.history) == 30
        assert parallel.statistics.models_generated == serial.statistics.models_generated
        # duplicates are answered by the cache, never submitted twice
        assert async_evaluator.submitted == parallel.statistics.models_evaluated
        assert (
            parallel.statistics.models_evaluated + parallel.statistics.cache_hits
            == parallel.statistics.models_generated
        )
        serial_order = [e.genome.cache_key() for e in serial.history.evaluations()]
        parallel_order = [e.genome.cache_key() for e in parallel.history.evaluations()]
        assert serial_order == parallel_order

    def test_async_path_through_real_master(self, tiny_dataset):
        config = ECADConfig.template_for_dataset(
            tiny_dataset,
            population_size=4,
            max_evaluations=8,
            training_epochs=2,
            backend="threads",
            eval_parallelism=4,
        )
        search = CoDesignSearch(tiny_dataset, config=config)
        master = search.build_master()
        try:
            result = RandomSearch(
                space=config.to_search_space(),
                evaluator=master,
                objectives=[FitnessObjective.accuracy()],
                max_evaluations=6,
                seed=2,
                device=config.hardware.fpga_device(),
            ).run()
        finally:
            master.shutdown()
        assert len(result.history) == 6
        assert result.statistics.models_evaluated > 0
        assert result.statistics.total_evaluation_seconds > 0
        assert 0 <= result.best_accuracy <= 1

    def test_async_path_captures_evaluator_failures(self, small_search_space, fake_evaluator):
        calls = {"n": 0}

        def flaky(genome):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise RuntimeError("injected failure")
            return fake_evaluator(genome)

        evaluator = self._AsyncEvaluator(flaky, max_workers=2)
        result = RandomSearch(
            space=small_search_space,
            evaluator=evaluator,
            objectives=[FitnessObjective.accuracy()],
            max_evaluations=12,
            seed=5,
            device=ARRIA10_GX1150,
        ).run()
        evaluator.backend.shutdown()
        assert len(result.history) == 12
        failed = [e for e in result.history.evaluations() if e.failed]
        assert failed  # injected failures surfaced as failed evaluations
        assert all("injected failure" in e.error for e in failed)
        assert 0 <= result.best_accuracy <= 1
