"""Unit tests for repro.nn.preprocessing, repro.nn.training and repro.nn.evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.evaluation import evaluate_kfold, evaluate_single_fold, kfold_indices
from repro.nn.mlp import MLP, MLPSpec
from repro.nn.preprocessing import (
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    one_hot,
    train_test_split,
)
from repro.nn.training import Trainer, TrainingConfig


class TestScalers:
    def test_standard_scaler_zero_mean_unit_std(self, rng):
        features = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(features)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_feature_safe(self):
        features = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(features)
        assert np.all(np.isfinite(scaled))
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_standard_scaler_inverse_round_trip(self, rng):
        features = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(features)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(features)), features)

    def test_standard_scaler_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_minmax_scaler_range(self, rng):
        features = rng.normal(size=(100, 5)) * 10
        scaled = MinMaxScaler().fit_transform(features)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_scalers_reject_empty_or_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 3)))
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.ones(5))


class TestOneHot:
    def test_one_hot_rows(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_encoder_fit_infers_classes_and_round_trips(self):
        labels = np.array([2, 0, 1, 2])
        encoder = OneHotEncoder()
        encoded = encoder.fit_transform(labels)
        assert encoder.num_classes == 3
        np.testing.assert_array_equal(encoder.inverse_transform(encoded), labels)

    def test_encoder_rejects_labels_beyond_declared_classes(self):
        with pytest.raises(ValueError):
            OneHotEncoder(num_classes=2).fit(np.array([0, 1, 2]))


class TestTrainTestSplit:
    def test_split_sizes(self, rng):
        features = rng.normal(size=(100, 3))
        labels = (rng.random(100) > 0.5).astype(int)
        train_x, test_x, train_y, test_y = train_test_split(features, labels, test_fraction=0.2, seed=0)
        assert train_x.shape[0] + test_x.shape[0] == 100
        assert test_x.shape[0] == pytest.approx(20, abs=2)
        assert train_x.shape[0] == train_y.shape[0]
        assert test_x.shape[0] == test_y.shape[0]

    def test_stratified_split_keeps_both_classes(self, rng):
        labels = np.array([0] * 90 + [1] * 10)
        features = rng.normal(size=(100, 2))
        _, _, train_y, test_y = train_test_split(features, labels, test_fraction=0.2, seed=1)
        assert set(np.unique(test_y)) == {0, 1}
        assert set(np.unique(train_y)) == {0, 1}

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.normal(size=(10, 2)), np.zeros(10), test_fraction=1.5)

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.normal(size=(10, 2)), np.zeros(9))


class TestTrainer:
    def test_training_improves_accuracy_on_separable_data(self, tiny_dataset, fast_training_config):
        spec = MLPSpec(
            input_size=tiny_dataset.num_features,
            output_size=tiny_dataset.num_classes,
            hidden_sizes=(16,),
            activations=("relu",),
        )
        model = MLP(spec, seed=0)
        from repro.nn.metrics import accuracy

        before = accuracy(model.predict(tiny_dataset.features), tiny_dataset.labels)
        history = Trainer(fast_training_config, seed=0).fit(model, tiny_dataset.features, tiny_dataset.labels)
        after = accuracy(model.predict(tiny_dataset.features), tiny_dataset.labels)
        assert after > before
        assert after > 0.8
        assert history.epochs_run == fast_training_config.epochs
        assert len(history.train_loss) == history.epochs_run
        assert history.wall_time_seconds > 0

    def test_early_stopping_halts_training(self, tiny_dataset):
        config = TrainingConfig(epochs=50, batch_size=16, early_stopping_patience=2, validation_fraction=0.2)
        spec = MLPSpec(input_size=tiny_dataset.num_features, output_size=2, hidden_sizes=(16,), activations=("relu",))
        history = Trainer(config, seed=0).fit(MLP(spec, seed=0), tiny_dataset.features, tiny_dataset.labels)
        assert history.epochs_run < 50
        assert history.stopped_early
        assert np.isfinite(history.best_validation_accuracy)

    def test_trainer_validates_inputs(self, tiny_dataset, fast_training_config):
        spec = MLPSpec(input_size=5, output_size=2, hidden_sizes=(4,), activations=("relu",))
        trainer = Trainer(fast_training_config, seed=0)
        with pytest.raises(ValueError):
            trainer.fit(MLP(spec, seed=0), tiny_dataset.features, tiny_dataset.labels)

    def test_trainer_rejects_labels_above_output_size(self, fast_training_config, rng):
        spec = MLPSpec(input_size=3, output_size=2, hidden_sizes=(4,), activations=("relu",))
        with pytest.raises(ValueError):
            Trainer(fast_training_config).fit(MLP(spec, seed=0), rng.normal(size=(10, 3)), np.full(10, 5))

    def test_training_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(validation_fraction=0.7)


class TestEvaluation:
    def test_kfold_indices_partition_all_samples(self):
        folds = kfold_indices(23, 5, seed=0)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))
        for train, test in folds:
            assert set(train.tolist()).isdisjoint(set(test.tolist()))
            assert len(train) + len(test) == 23

    def test_kfold_indices_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)

    def test_single_fold_evaluation(self, tiny_presplit_dataset, fast_training_config):
        spec = MLPSpec(
            input_size=tiny_presplit_dataset.num_features,
            output_size=tiny_presplit_dataset.num_classes,
            hidden_sizes=(16,),
            activations=("relu",),
        )
        result = evaluate_single_fold(
            spec,
            tiny_presplit_dataset.features,
            tiny_presplit_dataset.labels,
            tiny_presplit_dataset.test_features,
            tiny_presplit_dataset.test_labels,
            training_config=fast_training_config,
            seed=0,
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert result.accuracy > 0.6
        assert len(result.fold_accuracies) == 1
        assert result.accuracy_std == 0.0
        assert result.parameter_count == spec.parameter_count

    def test_kfold_evaluation_averages_folds(self, tiny_dataset, fast_training_config):
        spec = MLPSpec(
            input_size=tiny_dataset.num_features,
            output_size=tiny_dataset.num_classes,
            hidden_sizes=(8,),
            activations=("relu",),
        )
        result = evaluate_kfold(
            spec,
            tiny_dataset.features,
            tiny_dataset.labels,
            num_folds=4,
            training_config=fast_training_config,
            seed=0,
        )
        assert len(result.fold_accuracies) == 4
        assert result.accuracy == pytest.approx(np.mean(result.fold_accuracies))
        assert result.accuracy > 0.6
        assert result.train_seconds > 0
        assert len(result.histories) == 4
