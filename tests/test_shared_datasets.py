"""Lifecycle of the shared preprocessed dataset cache.

Covers the satellite contract for the processes backend: segment creation,
reuse across requests (per-process memoization on both the attach and the
preprocessing layer), cleanup when the creator shuts down, and no leaked
``/dev/shm`` segments even when a worker process crashes mid-run.
"""

from __future__ import annotations

import gc
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    SharedDataset,
    attach_shared_dataset,
    clear_attached_cache,
    clear_prepared_cache,
    prepare_dataset,
)
from repro.datasets.prepared import PreparedDataset
from repro.nn.evaluation import kfold_indices
from repro.nn.preprocessing import StandardScaler, one_hot


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_attached_cache()
    clear_prepared_cache()
    yield
    clear_attached_cache()
    clear_prepared_cache()


def _dataset(seed: int = 0, pre_split: bool = True) -> Dataset:
    rng = np.random.default_rng(seed)
    return Dataset(
        name="shared-test",
        features=rng.normal(size=(64, 6)),
        labels=rng.integers(0, 3, size=64),
        test_features=rng.normal(size=(16, 6)) if pre_split else None,
        test_labels=rng.integers(0, 3, size=16) if pre_split else None,
        metadata={"origin": "unit-test"},
    )


def _segments_exist(names: list[str]) -> bool:
    return any(os.path.exists(f"/dev/shm/{name}") for name in names)


# ----------------------------------------------------------------------
# worker-process probes (module level so the pool can pickle them)
# ----------------------------------------------------------------------
def _probe_reuse(handle):
    first = attach_shared_dataset(handle)
    second = attach_shared_dataset(handle)
    prepared_first = prepare_dataset(first)
    prepared_second = prepare_dataset(second)
    return {
        "pid": os.getpid(),
        "attach_memoized": first is second,
        "prepare_memoized": prepared_first is prepared_second,
        "feature_sum": float(first.features.sum()),
        "has_test": first.has_test_split,
    }


def _probe_crash(handle):
    attach_shared_dataset(handle)
    os._exit(3)


class TestSharedDatasetLifecycle:
    def test_handle_is_small_and_picklable(self):
        dataset = _dataset()
        with SharedDataset(dataset) as shared:
            payload = pickle.dumps(shared.handle)
            assert len(payload) < 2048
            assert dataset.features.nbytes > len(payload)
            restored = pickle.loads(payload)
            assert restored == shared.handle

    def test_attach_roundtrip_matches_arrays(self):
        dataset = _dataset(seed=1)
        with SharedDataset(dataset) as shared:
            attached = attach_shared_dataset(shared.handle)
            assert attached.name == dataset.name
            assert np.array_equal(attached.features, dataset.features)
            assert np.array_equal(attached.labels, dataset.labels)
            assert np.array_equal(attached.test_features, dataset.test_features)
            assert np.array_equal(attached.test_labels, dataset.test_labels)
            assert attached.metadata["origin"] == "unit-test"
            assert attached.metadata["shared_memory_segments"]
            clear_attached_cache()

    def test_attach_is_memoized_per_process(self):
        dataset = _dataset(seed=2)
        with SharedDataset(dataset) as shared:
            first = attach_shared_dataset(shared.handle)
            second = attach_shared_dataset(shared.handle)
            assert first is second
            assert prepare_dataset(first) is prepare_dataset(second)
            clear_attached_cache()

    def test_reuse_across_requests_in_worker_processes(self):
        dataset = _dataset(seed=3)
        with SharedDataset(dataset) as shared:
            with ProcessPoolExecutor(max_workers=2) as pool:
                reports = list(pool.map(_probe_reuse, [shared.handle] * 6))
        assert all(report["attach_memoized"] for report in reports)
        assert all(report["prepare_memoized"] for report in reports)
        expected = float(dataset.features.sum())
        assert all(report["feature_sum"] == expected for report in reports)
        assert all(report["has_test"] for report in reports)

    def test_creator_close_unlinks_segments(self):
        dataset = _dataset(seed=4)
        shared = SharedDataset(dataset)
        names = shared.segment_names
        assert len(names) == 4
        assert _segments_exist(names)
        shared.close()
        assert shared.closed
        assert not _segments_exist(names)
        shared.close()  # idempotent

    def test_close_after_worker_crash_leaves_no_leaks(self):
        dataset = _dataset(seed=5)
        shared = SharedDataset(dataset)
        names = shared.segment_names
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_probe_crash, shared.handle)
            with pytest.raises(BrokenProcessPool):
                future.result(timeout=30)
        # The crashed worker attached the segments but must not own them:
        # the creator's close still fully reclaims /dev/shm.
        assert _segments_exist(names)
        shared.close()
        assert not _segments_exist(names)

    def test_finalizer_backstop_releases_abandoned_exports(self):
        shared = SharedDataset(_dataset(seed=6))
        names = shared.segment_names
        assert _segments_exist(names)
        del shared
        gc.collect()
        assert not _segments_exist(names)

    def test_dataset_without_test_split(self):
        dataset = _dataset(seed=7, pre_split=False)
        with SharedDataset(dataset) as shared:
            assert shared.handle.test_features is None
            assert len(shared.segment_names) == 2
            attached = attach_shared_dataset(shared.handle)
            assert not attached.has_test_split
            clear_attached_cache()


class TestPreparedDataset:
    def test_artifacts_match_scratch_preprocessing(self):
        dataset = _dataset(seed=8)
        prepared = PreparedDataset(dataset)
        scratch = StandardScaler().fit(dataset.features)
        assert np.array_equal(prepared.scaler.mean_, scratch.mean_)
        assert np.array_equal(prepared.scaler.scale_, scratch.scale_)
        assert np.array_equal(prepared.standardized_features, scratch.transform(dataset.features))
        assert np.array_equal(
            prepared.standardized_test_features, scratch.transform(dataset.test_features)
        )
        assert np.array_equal(
            prepared.one_hot_labels, one_hot(dataset.labels, dataset.num_classes)
        )

    def test_one_hot_slices_match_sliced_encoding(self):
        dataset = _dataset(seed=9)
        prepared = PreparedDataset(dataset)
        indices = np.asarray([3, 1, 17, 40])
        assert np.array_equal(
            prepared.one_hot_labels[indices],
            one_hot(dataset.labels[indices], dataset.num_classes),
        )

    def test_fold_indices_memoized_and_equal(self):
        dataset = _dataset(seed=10, pre_split=False)
        prepared = PreparedDataset(dataset)
        folds = prepared.fold_indices(5, seed=13)
        assert folds is prepared.fold_indices(5, seed=13)
        scratch = kfold_indices(dataset.num_samples, 5, seed=13)
        for (train_a, test_a), (train_b, test_b) in zip(folds, scratch):
            assert np.array_equal(train_a, train_b)
            assert np.array_equal(test_a, test_b)
        assert prepared.fold_indices(5, seed=14) is not folds

    def test_prepare_dataset_memoizes_per_object(self):
        dataset = _dataset(seed=11)
        assert prepare_dataset(dataset) is prepare_dataset(dataset)
        other = _dataset(seed=11)
        assert prepare_dataset(other) is not prepare_dataset(dataset)

    def test_missing_test_split_raises(self):
        prepared = PreparedDataset(_dataset(seed=12, pre_split=False))
        with pytest.raises(ValueError, match="no pre-split test partition"):
            _ = prepared.standardized_test_features
