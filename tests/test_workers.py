"""Unit tests for the worker/master evaluation substrate."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.genome import CoDesignGenome, HardwareGenome, MLPGenome
from repro.hardware.device import ARRIA10_GX1150, STRATIX10_2800, TITAN_X
from repro.hardware.memory import DDR4_BANK, MemorySystem
from repro.hardware.systolic import GridConfig
from repro.nn.training import TrainingConfig
from repro.workers.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.workers.base import EvaluationRequest, WorkerReport
from repro.workers.hardware_db import HardwareDatabaseWorker
from repro.workers.master import Master
from repro.workers.physical import PhysicalWorker
from repro.workers.simulation import SimulationWorker


@pytest.fixture
def fast_request(sample_genome, tiny_dataset, fast_training_config) -> EvaluationRequest:
    return EvaluationRequest(
        genome=sample_genome,
        dataset=tiny_dataset,
        evaluation_protocol="1-fold",
        training_config=fast_training_config,
        seed=0,
    )


class TestRequestAndReport:
    def test_request_validation(self, sample_genome):
        with pytest.raises(ValueError):
            EvaluationRequest(genome=sample_genome, evaluation_protocol="3-fold")
        with pytest.raises(ValueError):
            EvaluationRequest(genome=sample_genome, num_folds=1)

    def test_report_failed_flag(self):
        assert not WorkerReport(worker_name="x").failed
        assert WorkerReport(worker_name="x", error="boom").failed


class TestSimulationWorker:
    def test_training_produces_accuracy_and_gpu_metrics(self, fast_request):
        worker = SimulationWorker(gpu=TITAN_X)
        report = worker.evaluate(fast_request)
        assert not report.failed
        assert 0.0 <= report.accuracy <= 1.0
        assert report.accuracy > 0.6  # tiny dataset is easy
        assert report.parameter_count > 0
        assert report.train_seconds > 0
        assert report.gpu_metrics is not None
        assert report.gpu_metrics.batch_size == fast_request.genome.gpu_batch_size

    def test_kfold_protocol(self, sample_genome, tiny_dataset, fast_training_config):
        request = EvaluationRequest(
            genome=sample_genome,
            dataset=tiny_dataset,
            evaluation_protocol="10-fold",
            num_folds=3,
            training_config=fast_training_config,
            seed=0,
        )
        report = SimulationWorker(gpu=None, measure_gpu=False).evaluate(request)
        assert not report.failed
        assert len(report.extras["fold_accuracies"]) == 3
        assert report.gpu_metrics is None

    def test_presplit_dataset_uses_its_test_partition(self, sample_genome, tiny_presplit_dataset, fast_training_config):
        genome = sample_genome  # input size differs from dataset; to_spec adapts via dataset dims
        request = EvaluationRequest(
            genome=genome,
            dataset=tiny_presplit_dataset,
            evaluation_protocol="1-fold",
            training_config=fast_training_config,
            seed=0,
        )
        report = SimulationWorker(gpu=TITAN_X).evaluate(request)
        assert not report.failed
        assert report.accuracy > 0.5

    def test_missing_dataset_is_an_error_report(self, sample_genome, fast_training_config):
        request = EvaluationRequest(genome=sample_genome, dataset=None, training_config=fast_training_config)
        report = SimulationWorker().evaluate(request)
        assert report.failed
        assert "dataset" in report.error

    def test_holdout_fraction_validation(self):
        with pytest.raises(ValueError):
            SimulationWorker(holdout_fraction=0.0)


class TestHardwareDatabaseWorker:
    def test_produces_fpga_metrics(self, fast_request):
        worker = HardwareDatabaseWorker(device=ARRIA10_GX1150)
        report = worker.evaluate(fast_request)
        assert not report.failed
        assert report.fpga_metrics is not None
        assert report.fpga_metrics.outputs_per_second > 0
        assert report.fpga_metrics.device_name == ARRIA10_GX1150.name

    def test_explicit_dimensions_without_dataset(self, sample_genome):
        worker = HardwareDatabaseWorker(device=STRATIX10_2800, input_size=64, output_size=4)
        report = worker.evaluate(EvaluationRequest(genome=sample_genome))
        assert not report.failed
        assert report.fpga_metrics.device_name == STRATIX10_2800.name

    def test_missing_dimensions_is_an_error_report(self, sample_genome):
        report = HardwareDatabaseWorker(device=ARRIA10_GX1150).evaluate(
            EvaluationRequest(genome=sample_genome)
        )
        assert report.failed

    def test_infeasible_grid_is_an_error_report(self, tiny_dataset):
        genome = CoDesignGenome(
            mlp=MLPGenome(hidden_layers=(16,), activations=("relu",)),
            hardware=HardwareGenome(grid=GridConfig(rows=32, columns=32, vector_width=16), batch_size=512),
        )
        report = HardwareDatabaseWorker(device=ARRIA10_GX1150).evaluate(
            EvaluationRequest(genome=genome, dataset=tiny_dataset)
        )
        assert report.failed

    def test_custom_memory_system_changes_results(self, fast_request):
        one_bank = HardwareDatabaseWorker(
            device=ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=1)
        ).evaluate(fast_request)
        four_banks = HardwareDatabaseWorker(
            device=ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=4)
        ).evaluate(fast_request)
        assert four_banks.fpga_metrics.outputs_per_second >= one_bank.fpga_metrics.outputs_per_second


class TestPhysicalWorker:
    def test_produces_synthesis_report(self, fast_request):
        report = PhysicalWorker(device=ARRIA10_GX1150).evaluate(fast_request)
        assert not report.failed
        assert report.synthesis is not None
        assert report.synthesis.dsp_used == fast_request.genome.hardware.grid.dsp_blocks_used


def _square(x: int) -> int:
    """Module-level so process pools can pickle it."""
    return x * x


def _explode(x: int) -> int:
    """Module-level so process pools can pickle it."""
    raise RuntimeError(f"boom on {x}")


class TestBackends:
    def test_serial_backend_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_pool_backend_matches_serial(self):
        with ThreadPoolBackend(max_workers=3) as backend:
            assert backend.map(lambda x: x * x, list(range(20))) == [x * x for x in range(20)]

    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadPoolBackend(max_workers=3), lambda: ProcessPoolBackend(max_workers=2)],
        ids=["serial", "threads", "processes"],
    )
    def test_map_preserves_order(self, backend_factory):
        with backend_factory() as backend:
            assert backend.map(_square, list(range(12))) == [x * x for x in range(12)]

    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadPoolBackend(max_workers=2), lambda: ProcessPoolBackend(max_workers=2)],
        ids=["serial", "threads", "processes"],
    )
    def test_submit_propagates_exceptions(self, backend_factory):
        with backend_factory() as backend:
            future = backend.submit(_explode, 5)
            assert isinstance(future.exception(), RuntimeError)
            with pytest.raises(RuntimeError, match="boom on 5"):
                future.result()
            # A failed item does not poison the backend.
            assert backend.submit(_square, 4).result() == 16

    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadPoolBackend(max_workers=2), lambda: ProcessPoolBackend(max_workers=2)],
        ids=["serial", "threads", "processes"],
    )
    def test_shutdown_is_idempotent(self, backend_factory):
        backend = backend_factory()
        assert backend.submit(_square, 3).result() == 9
        backend.shutdown()
        backend.shutdown()
        # The pool is lazily recreated after shutdown.
        assert backend.map(_square, [2]) == [4]
        backend.shutdown()

    def test_as_completed_yields_in_completion_order(self):
        with ThreadPoolBackend(max_workers=2) as backend:
            slow = backend.submit(lambda s: time.sleep(s) or "slow", 0.2)
            fast = backend.submit(lambda s: time.sleep(s) or "fast", 0.01)
            ordered = [future.result() for future in backend.as_completed([slow, fast])]
        assert ordered == ["fast", "slow"]

    def test_resolver(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("threads"), ThreadPoolBackend)
        assert isinstance(resolve_backend("processes"), ProcessPoolBackend)
        backend = SerialBackend()
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError):
            resolve_backend("mpi")
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)

    def test_resolver_forwards_max_workers(self):
        assert resolve_backend("threads", max_workers=7).max_workers == 7
        assert resolve_backend("processes", max_workers=2).max_workers == 2


class TestMaster:
    def _master(self, tiny_dataset, fast_training_config, backend=None) -> Master:
        workers = [
            SimulationWorker(gpu=TITAN_X),
            HardwareDatabaseWorker(device=ARRIA10_GX1150),
            PhysicalWorker(device=ARRIA10_GX1150),
        ]
        return Master(
            workers=workers,
            dataset=tiny_dataset,
            evaluation_protocol="1-fold",
            training_config=fast_training_config,
            backend=backend,
            seed=0,
        )

    def test_merges_all_worker_reports(self, tiny_dataset, fast_training_config, sample_genome):
        master = self._master(tiny_dataset, fast_training_config)
        evaluation = master.evaluate(sample_genome)
        assert not evaluation.failed
        assert evaluation.accuracy > 0.5
        assert evaluation.fpga_metrics is not None
        assert evaluation.gpu_metrics is not None
        assert evaluation.synthesis is not None
        assert evaluation.evaluation_seconds > 0
        assert evaluation.parameter_count > 0
        assert "simulation" in evaluation.extras

    def test_master_is_callable_like_an_evaluator(self, tiny_dataset, fast_training_config, sample_genome):
        master = self._master(tiny_dataset, fast_training_config)
        assert master(sample_genome).accuracy == pytest.approx(master.evaluate(sample_genome).accuracy, abs=0.2)

    def test_population_evaluation_through_thread_backend(
        self, tiny_dataset, fast_training_config, small_search_space, rng
    ):
        master = self._master(tiny_dataset, fast_training_config, backend="threads")
        genomes = [small_search_space.random_genome(rng, device=ARRIA10_GX1150) for _ in range(3)]
        evaluations = master.evaluate_population(genomes)
        assert len(evaluations) == 3
        assert all(not e.failed for e in evaluations)
        master.shutdown()

    def test_max_workers_forwarded_to_named_backend(self, tiny_dataset, fast_training_config):
        master = Master(
            workers=[PhysicalWorker(device=ARRIA10_GX1150)],
            dataset=tiny_dataset,
            training_config=fast_training_config,
            backend="threads",
            max_workers=7,
        )
        assert master.backend.max_workers == 7
        master.shutdown()
        with pytest.raises(ValueError):
            Master(workers=[PhysicalWorker(device=ARRIA10_GX1150)], max_workers=0)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_submit_and_drain_collect_all_results(
        self, tiny_dataset, fast_training_config, small_search_space, rng, backend
    ):
        master = self._master(tiny_dataset, fast_training_config, backend=backend)
        genomes = [small_search_space.random_genome(rng, device=ARRIA10_GX1150) for _ in range(3)]
        futures = [master.submit(genome) for genome in genomes]
        assert len(futures) == 3
        drained = master.drain()
        assert len(drained) == 3
        assert all(not evaluation.failed for evaluation in drained)
        assert {e.genome.cache_key() for e in drained} == {g.cache_key() for g in genomes}
        # drain() collects each submission exactly once.
        assert master.drain() == []
        assert master.in_flight_count == 0
        master.shutdown()

    def test_serial_and_parallel_population_results_match(
        self, tiny_dataset, fast_training_config, small_search_space, rng
    ):
        genomes = [small_search_space.random_genome(rng, device=ARRIA10_GX1150) for _ in range(4)]
        serial = self._master(tiny_dataset, fast_training_config, backend="serial")
        threaded = self._master(tiny_dataset, fast_training_config, backend="threads")
        serial_results = serial.evaluate_population(genomes)
        threaded_results = threaded.evaluate_population(genomes)
        # Per-request seeds are derived from the genome hash, so the same
        # genome trains identically regardless of the dispatch mechanism.
        for a, b in zip(serial_results, threaded_results):
            assert a.genome.cache_key() == b.genome.cache_key()
            assert a.accuracy == pytest.approx(b.accuracy, abs=1e-12)
            assert a.parameter_count == b.parameter_count
        serial.shutdown()
        threaded.shutdown()

    def test_worker_error_becomes_error_field(self, tiny_dataset, fast_training_config, sample_genome):
        class ExplodingWorker(SimulationWorker):
            def evaluate(self, request):
                report = WorkerReport(worker_name="exploding")
                report.error = "synthetic failure"
                return report

        master = Master(
            workers=[ExplodingWorker(), HardwareDatabaseWorker(device=ARRIA10_GX1150)],
            dataset=tiny_dataset,
            training_config=fast_training_config,
        )
        evaluation = master.evaluate(sample_genome)
        assert evaluation.failed
        assert "synthetic failure" in evaluation.error

    def test_master_requires_workers(self, tiny_dataset):
        with pytest.raises(ValueError):
            Master(workers=[], dataset=tiny_dataset)

    def test_request_seed_derivation_is_deterministic(self, tiny_dataset, fast_training_config, sample_genome):
        master = self._master(tiny_dataset, fast_training_config)
        request_a = master.build_request(sample_genome)
        request_b = master.build_request(sample_genome)
        assert request_a.seed == request_b.seed
