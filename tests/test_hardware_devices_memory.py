"""Unit tests for repro.hardware.device and repro.hardware.memory."""

from __future__ import annotations

import pytest

from repro.hardware.device import (
    ARRIA10_GX1150,
    QUADRO_M5000,
    RADEON_VII,
    STRATIX10_2800,
    TITAN_X,
    FPGADevice,
    GPUDevice,
    available_fpga_devices,
    available_gpu_devices,
    fpga_device,
    gpu_device,
)
from repro.hardware.memory import DDR4_BANK, HBM2_STACK, MemorySpec, MemorySystem


class TestFPGADevices:
    def test_arria10_peak_matches_paper(self):
        """Paper: 250 MHz provides a peak throughput of 759 GFLOP/s FP32."""
        assert ARRIA10_GX1150.clock_mhz == 250.0
        assert ARRIA10_GX1150.peak_gflops == pytest.approx(759.0)

    def test_arria10_single_bank_bandwidth_matches_paper(self):
        """Paper: a single bank of DDR4 provides a peak bandwidth of 19.2 GB/s."""
        assert ARRIA10_GX1150.ddr_banks == 1
        assert ARRIA10_GX1150.total_bandwidth_gbps == pytest.approx(19.2)

    def test_stratix10_roofline_matches_paper(self):
        """Paper: Stratix 10 searched at 400 MHz with a 4.6 TFLOP/s roofline."""
        assert STRATIX10_2800.clock_mhz == 400.0
        assert STRATIX10_2800.peak_gflops == pytest.approx(4608.0)
        assert STRATIX10_2800.ddr_banks == 4

    def test_bank_override_scales_bandwidth(self):
        for banks, expected in [(1, 19.2), (2, 38.4), (4, 76.8)]:
            assert ARRIA10_GX1150.with_ddr_banks(banks).total_bandwidth_gbps == pytest.approx(expected)

    def test_clock_override(self):
        derated = STRATIX10_2800.with_clock(300.0)
        assert derated.clock_mhz == 300.0
        assert derated.peak_gflops == pytest.approx(2.0 * 5760 * 0.3)

    def test_on_chip_memory_positive(self):
        assert ARRIA10_GX1150.on_chip_memory_bytes > 5_000_000

    def test_catalogue_lookup_and_aliases(self):
        assert fpga_device("arria10") is ARRIA10_GX1150
        assert fpga_device("Stratix10") is STRATIX10_2800
        assert fpga_device("s10") is STRATIX10_2800
        assert "Arria 10 GX 1150" in available_fpga_devices()
        with pytest.raises(KeyError):
            fpga_device("virtex7")

    def test_validation(self):
        with pytest.raises(ValueError):
            FPGADevice(name="bad", dsp_count=0, m20k_count=1, alm_count=1, clock_mhz=100)
        with pytest.raises(ValueError):
            FPGADevice(name="bad", dsp_count=10, m20k_count=1, alm_count=1, clock_mhz=-5)


class TestGPUDevices:
    def test_catalogue_matches_paper_specs(self):
        assert QUADRO_M5000.peak_tflops == pytest.approx(4.3)
        assert QUADRO_M5000.memory_bandwidth_gbps == pytest.approx(211.0)
        assert TITAN_X.peak_tflops == pytest.approx(12.0)
        assert RADEON_VII.peak_tflops == pytest.approx(13.44)
        assert RADEON_VII.memory_bandwidth_gbps == pytest.approx(1000.0)

    def test_derived_quantities(self):
        assert TITAN_X.peak_gflops == pytest.approx(12_000.0)
        assert TITAN_X.peak_flops == pytest.approx(12e12)
        assert TITAN_X.memory_bandwidth_bytes_per_second == pytest.approx(480e9)

    def test_lookup_and_aliases(self):
        assert gpu_device("titan_x") is TITAN_X
        assert gpu_device("TX") is TITAN_X
        assert gpu_device("m5000") is QUADRO_M5000
        assert gpu_device("radeon-vii") is RADEON_VII
        assert len(available_gpu_devices()) == 3
        with pytest.raises(KeyError):
            gpu_device("a100")

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUDevice(name="bad", peak_tflops=0, memory_bandwidth_gbps=1, memory_gb=1, streaming_multiprocessors=1)


class TestMemorySystem:
    def test_effective_bandwidth_below_peak(self):
        memory = MemorySystem(DDR4_BANK, banks=1)
        assert memory.effective_bandwidth_gbps < memory.peak_bandwidth_gbps
        assert memory.peak_bandwidth_gbps == pytest.approx(19.2)

    def test_bandwidth_scales_linearly_with_banks(self):
        one = MemorySystem(DDR4_BANK, banks=1)
        four = MemorySystem(DDR4_BANK, banks=4)
        assert four.effective_bandwidth_gbps == pytest.approx(4 * one.effective_bandwidth_gbps)

    def test_transfer_time_includes_latency_and_scales_with_bytes(self):
        memory = MemorySystem(DDR4_BANK, banks=1)
        small = memory.transfer_seconds(1_000)
        large = memory.transfer_seconds(1_000_000)
        assert large > small > 0
        assert memory.transfer_seconds(0) == 0.0
        two_streams = memory.transfer_seconds(1_000, streams=2)
        assert two_streams > small

    def test_bandwidth_ratio(self):
        memory = MemorySystem(DDR4_BANK, banks=1)
        assert memory.bandwidth_ratio(0) == float("inf")
        assert memory.bandwidth_ratio(memory.effective_bandwidth_bytes_per_second) == pytest.approx(1.0)
        assert memory.bandwidth_ratio(2 * memory.effective_bandwidth_bytes_per_second) == pytest.approx(0.5)

    def test_with_banks_copy(self):
        memory = MemorySystem(DDR4_BANK, banks=1)
        upgraded = memory.with_banks(4)
        assert upgraded.banks == 4
        assert memory.banks == 1

    def test_hbm_spec_much_faster_than_ddr(self):
        assert HBM2_STACK.peak_bandwidth_gbps > 10 * DDR4_BANK.peak_bandwidth_gbps

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(DDR4_BANK, banks=0)
        with pytest.raises(ValueError):
            MemorySpec(name="bad", peak_bandwidth_gbps=-1)
        with pytest.raises(ValueError):
            MemorySpec(name="bad", peak_bandwidth_gbps=10, efficiency=1.5)
        memory = MemorySystem(DDR4_BANK)
        with pytest.raises(ValueError):
            memory.transfer_seconds(-1)
        with pytest.raises(ValueError):
            memory.transfer_seconds(10, streams=0)
        with pytest.raises(ValueError):
            memory.bandwidth_ratio(-1)
