"""Exact equivalence of the vectorized hardware sweeps vs the scalar model.

The vectorized paths may only replace the scalar loops if they compute the
*same floats* — a selection decision flipped by a reassociated sum would
change search trajectories.  Every comparison here is ``==``/``array_equal``,
never ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import (
    ARRIA10_GX1150,
    FPGAPerformanceModel,
    GridConfig,
    GridSearchSpace,
    evaluate_workloads,
    sweep_grid_configs,
)
from repro.nn.mlp import MLPSpec

SPECS = [
    MLPSpec(input_size=784, output_size=10, hidden_sizes=(128, 64), activations=("relu", "relu")),
    MLPSpec(input_size=20, output_size=2, hidden_sizes=(32,), activations=("tanh",)),
    MLPSpec(input_size=561, output_size=6, hidden_sizes=(100, 50, 25), activations=("relu",) * 3),
]

# A deliberately mixed slice of the design space: tiny, large, uneven,
# infeasible-on-Arria10 and default-shaped configurations.
CONFIG_SAMPLE = [
    GridConfig(1, 1, 1, 1, 1),
    GridConfig(4, 4, 8, 8, 4),
    GridConfig(8, 8, 8, 8, 8),
    GridConfig(16, 16, 4, 2, 8),
    GridConfig(32, 32, 8, 8, 16),  # blows the DSP budget
    GridConfig(2, 32, 16, 16, 2),
    GridConfig(32, 2, 1, 32, 4),
    GridConfig(1, 16, 32, 32, 16),
]


@pytest.fixture()
def model():
    return FPGAPerformanceModel(ARRIA10_GX1150)


class TestSweepEquivalence:
    @pytest.mark.parametrize("spec_index", range(len(SPECS)))
    @pytest.mark.parametrize("batch_size", [16, 1024])
    def test_sweep_matches_scalar_evaluate_bitwise(self, model, spec_index, batch_size):
        spec = SPECS[spec_index]
        shapes = spec.gemm_shapes(batch_size)
        sweep = sweep_grid_configs(model, shapes, CONFIG_SAMPLE, batch_size)
        for index, config in enumerate(CONFIG_SAMPLE):
            assert bool(sweep.fits[index]) == config.fits(model.device)
            if not config.fits(model.device):
                continue
            scalar = model.evaluate_shapes(shapes, config, batch_size)
            assert sweep.potential_gflops[index] == scalar.potential_gflops
            assert sweep.effective_gflops[index] == scalar.effective_gflops
            assert sweep.total_time_seconds[index] == scalar.total_time_seconds
            assert sweep.outputs_per_second[index] == scalar.outputs_per_second
            assert sweep.latency_seconds[index] == scalar.latency_seconds
            assert sweep.efficiency[index] == scalar.efficiency
            assert sweep.dram_bytes[index] == scalar.dram_bytes
            assert sweep.power_watts[index] == scalar.power_watts
            assert bool(sweep.compute_bound[index]) == scalar.compute_bound

    def test_sweep_over_full_default_space(self, model):
        # The whole 6480-config default space in one pass, spot-checked
        # bitwise against the scalar model on a deterministic sample.
        spec = SPECS[1]
        shapes = spec.gemm_shapes(64)
        configs = GridSearchSpace().all_configs()
        sweep = sweep_grid_configs(model, shapes, configs, 64)
        assert len(sweep.configs) == len(configs)
        rng = np.random.default_rng(0)
        for index in rng.choice(len(configs), size=60, replace=False):
            config = configs[index]
            assert bool(sweep.fits[index]) == config.fits(model.device)
            if config.fits(model.device):
                scalar = model.evaluate_shapes(shapes, config, 64)
                assert sweep.outputs_per_second[index] == scalar.outputs_per_second
                assert sweep.efficiency[index] == scalar.efficiency

    def test_empty_inputs_raise(self, model):
        with pytest.raises(ValueError, match="empty GEMM workload"):
            sweep_grid_configs(model, [], CONFIG_SAMPLE, 16)
        with pytest.raises(ValueError, match="candidates must not be empty"):
            sweep_grid_configs(model, SPECS[0].gemm_shapes(16), [], 16)


class TestWorkloadBatchEquivalence:
    def test_batch_metrics_equal_scalar_metrics(self, model):
        workloads = []
        for spec, batch_size in [(SPECS[0], 16), (SPECS[1], 256), (SPECS[2], 64), (SPECS[0], 64)]:
            config = GridConfig(8, 8, 8, 8, 8) if batch_size != 64 else GridConfig(4, 4, 8, 8, 4)
            workloads.append((spec.gemm_shapes(batch_size), config, batch_size))
        batched = evaluate_workloads(model, workloads)
        assert len(batched) == len(workloads)
        for (shapes, config, batch_size), metrics in zip(workloads, batched):
            scalar = model.evaluate_shapes(shapes, config, batch_size)
            assert metrics == scalar

    def test_infeasible_workload_raises_like_scalar(self, model):
        workloads = [(SPECS[0].gemm_shapes(16), GridConfig(32, 32, 8, 8, 16), 16)]
        with pytest.raises(ValueError, match="DSP blocks"):
            evaluate_workloads(model, workloads)


class TestBestGridEquivalence:
    def test_vectorized_selection_matches_scalar_loop(self, model):
        reference = FPGAPerformanceModel(ARRIA10_GX1150)
        candidates = CONFIG_SAMPLE
        for spec in SPECS:
            for objective in ("outputs_per_second", "efficiency", "latency_seconds"):
                config, metrics = model.best_grid_for(
                    spec, candidates, batch_size=32, objective=objective
                )
                expected_config, expected_metrics = reference._best_grid_scalar(
                    spec, candidates, batch_size=32, objective=objective
                )
                assert config == expected_config
                assert metrics == expected_metrics

    def test_selection_over_default_space_matches(self, model):
        reference = FPGAPerformanceModel(ARRIA10_GX1150)
        candidates = GridSearchSpace(
            rows=(1, 4, 16),
            columns=(2, 8),
            interleave_rows=(1, 8),
            interleave_columns=(4, 16),
            vector_width=(1, 8),
        ).all_configs()
        config, metrics = model.best_grid_for(SPECS[2], candidates, batch_size=128)
        expected_config, expected_metrics = reference._best_grid_scalar(
            SPECS[2], candidates, batch_size=128, objective="outputs_per_second"
        )
        assert config == expected_config
        assert metrics == expected_metrics

    def test_best_grid_memoized(self, model):
        candidates = CONFIG_SAMPLE
        first = model.best_grid_for(SPECS[0], candidates, batch_size=16)
        assert len(model._best_grid_cache) == 1
        second = model.best_grid_for(SPECS[0], candidates, batch_size=16)
        assert second[0] is first[0]
        assert second[1] is first[1]
        assert len(model._best_grid_cache) == 1
        model.best_grid_for(SPECS[0], candidates, batch_size=32)
        assert len(model._best_grid_cache) == 2

    def test_no_fitting_candidate_raises(self, model):
        with pytest.raises(ValueError, match="no candidate grid configuration fits"):
            model.best_grid_for(SPECS[0], [GridConfig(32, 32, 8, 8, 16)], batch_size=16)
        with pytest.raises(ValueError, match="candidates must not be empty"):
            model.best_grid_for(SPECS[0], [], batch_size=16)

    def test_unsupported_objective_falls_back_to_scalar(self, model):
        config, metrics = model.best_grid_for(
            SPECS[1], CONFIG_SAMPLE, batch_size=16, objective="batch_size"
        )
        reference = FPGAPerformanceModel(ARRIA10_GX1150)
        expected_config, expected_metrics = reference._best_grid_scalar(
            SPECS[1], CONFIG_SAMPLE, batch_size=16, objective="batch_size"
        )
        assert config == expected_config
        assert metrics == expected_metrics
