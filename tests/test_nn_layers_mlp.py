"""Unit tests for repro.nn.layers and repro.nn.mlp."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import DenseLayer, GemmShape
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.mlp import MLP, MLPSpec
from repro.nn.preprocessing import one_hot


class TestGemmShape:
    def test_flops_formula(self):
        shape = GemmShape(m=4, k=10, n=6)
        assert shape.flops == 2 * 4 * 10 * 6

    def test_byte_accounting(self):
        shape = GemmShape(m=2, k=3, n=5)
        assert shape.input_bytes == 4 * (2 * 3 + 3 * 5)
        assert shape.output_bytes == 4 * 2 * 5

    def test_with_batch(self):
        shape = GemmShape(m=1, k=8, n=4).with_batch(64)
        assert (shape.m, shape.k, shape.n) == (64, 8, 4)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_dimensions(self, bad):
        with pytest.raises(ValueError):
            GemmShape(m=bad, k=1, n=1)


class TestDenseLayer:
    def test_forward_shape_and_bias(self, rng):
        layer = DenseLayer(4, 3, activation="identity")
        layer.initialize(rng)
        layer.set_parameters([np.ones((4, 3)), np.full(3, 2.0)])
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out, 6.0)

    def test_forward_without_bias(self, rng):
        layer = DenseLayer(4, 3, activation="identity", use_bias=False)
        layer.initialize(rng)
        layer.set_parameters([np.ones((4, 3))])
        np.testing.assert_allclose(layer.forward(np.ones((2, 4))), 4.0)
        assert layer.bias is None

    def test_forward_rejects_wrong_feature_count(self, rng):
        layer = DenseLayer(4, 3)
        layer.initialize(rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 5)))

    def test_forward_before_initialize_raises(self):
        with pytest.raises(RuntimeError):
            DenseLayer(2, 2).forward(np.ones((1, 2)))

    def test_backward_requires_training_forward(self, rng):
        layer = DenseLayer(3, 2)
        layer.initialize(rng)
        layer.forward(np.ones((1, 3)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_parameter_count(self):
        assert DenseLayer(10, 5).parameter_count == 10 * 5 + 5
        assert DenseLayer(10, 5, use_bias=False).parameter_count == 50

    def test_gradient_matches_finite_difference(self, rng):
        layer = DenseLayer(3, 2, activation="tanh")
        layer.initialize(rng)
        inputs = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))

        layer.forward(inputs, training=True)
        layer.backward(upstream)
        analytic = layer.grad_weights.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer.weights)
        for i in range(3):
            for j in range(2):
                original = layer.weights[i, j]
                layer.weights[i, j] = original + eps
                up = np.sum(layer.forward(inputs) * upstream)
                layer.weights[i, j] = original - eps
                down = np.sum(layer.forward(inputs) * upstream)
                layer.weights[i, j] = original
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_gemm_shape_reflects_layer_dimensions(self):
        layer = DenseLayer(128, 64)
        shape = layer.gemm_shape(batch_size=32)
        assert (shape.m, shape.k, shape.n) == (32, 128, 64)


class TestMLPSpec:
    def test_layer_sizes_and_parameter_count(self):
        spec = MLPSpec(input_size=10, output_size=3, hidden_sizes=(8, 4), activations=("relu", "tanh"))
        assert spec.layer_sizes == (10, 8, 4, 3)
        assert spec.num_layers == 3
        assert spec.parameter_count == (10 * 8 + 8) + (8 * 4 + 4) + (4 * 3 + 3)
        assert spec.total_neurons == 8 + 4 + 3

    def test_single_activation_broadcasts(self):
        spec = MLPSpec(input_size=4, output_size=2, hidden_sizes=(8, 8, 8), activations=("relu",))
        assert spec.activations == ("relu", "relu", "relu")

    def test_gemm_shapes_chain_dimensions(self):
        spec = MLPSpec(input_size=20, output_size=2, hidden_sizes=(64, 32), activations=("relu", "relu"))
        shapes = spec.gemm_shapes(batch_size=16)
        assert [(s.m, s.k, s.n) for s in shapes] == [(16, 20, 64), (16, 64, 32), (16, 32, 2)]

    def test_flops_per_sample(self):
        spec = MLPSpec(input_size=20, output_size=2, hidden_sizes=(10,), activations=("relu",))
        assert spec.flops_per_sample() == 2 * (20 * 10 + 10 * 2)

    def test_round_trip_dict(self):
        spec = MLPSpec(input_size=7, output_size=4, hidden_sizes=(32,), activations=("elu",), use_bias=False)
        assert MLPSpec.from_dict(spec.to_dict()) == spec

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            MLPSpec(input_size=0, output_size=2)
        with pytest.raises(ValueError):
            MLPSpec(input_size=4, output_size=2, hidden_sizes=(0,))
        with pytest.raises(ValueError):
            MLPSpec(input_size=4, output_size=2, hidden_sizes=(8, 8), activations=("relu", "tanh", "elu"))
        with pytest.raises(ValueError):
            MLPSpec(input_size=4, output_size=2, hidden_sizes=(8,), activations=("nonexistent",))


class TestMLP:
    def test_forward_produces_probabilities(self, small_mlp_spec):
        model = MLP(small_mlp_spec, seed=0)
        out = model.predict_proba(np.random.default_rng(0).normal(size=(6, 12)))
        assert out.shape == (6, 2)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-6)

    def test_predict_returns_labels_in_range(self, small_mlp_spec):
        model = MLP(small_mlp_spec, seed=0)
        labels = model.predict(np.random.default_rng(1).normal(size=(10, 12)))
        assert labels.shape == (10,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_train_step_reduces_loss_on_fixed_batch(self, small_mlp_spec, rng):
        model = MLP(small_mlp_spec, seed=3)
        x = rng.normal(size=(32, 12))
        y = one_hot((rng.random(32) > 0.5).astype(int), 2)
        from repro.nn.optimizers import Adam

        optimizer = Adam(learning_rate=0.01)
        first_loss = model.train_step(x, y)
        for _ in range(30):
            model.train_step(x, y)
            optimizer.step(model.parameters(), model.gradients())
        final_loss = model.evaluate_loss(x, y)
        assert final_loss < first_loss

    def test_train_step_rejects_integer_labels(self, small_mlp_spec, rng):
        model = MLP(small_mlp_spec, seed=0)
        with pytest.raises(ValueError):
            model.train_step(rng.normal(size=(4, 12)), np.array([0, 1, 0, 1]))

    def test_parameter_count_matches_spec(self, small_mlp_spec):
        model = MLP(small_mlp_spec, seed=0)
        assert model.parameter_count == small_mlp_spec.parameter_count

    def test_same_seed_gives_same_initial_weights(self, small_mlp_spec, rng):
        x = rng.normal(size=(3, 12))
        out_a = MLP(small_mlp_spec, seed=42).predict_proba(x)
        out_b = MLP(small_mlp_spec, seed=42).predict_proba(x)
        np.testing.assert_array_equal(out_a, out_b)

    def test_loss_gradient_shortcut_consistency(self, rng):
        """Softmax+CE analytic gradient must equal the chain-rule numeric gradient."""
        spec = MLPSpec(input_size=5, output_size=3, hidden_sizes=(6,), activations=("tanh",))
        model = MLP(spec, seed=1)
        x = rng.normal(size=(8, 5))
        y = one_hot(rng.integers(0, 3, size=8), 3)
        model.train_step(x, y)
        analytic = [g.copy() for g in model.gradients()]

        eps = 1e-6
        loss_fn = CategoricalCrossEntropy()
        params = model.parameters()
        for param, grad in zip(params, analytic):
            flat_param = param.reshape(-1)
            flat_grad = grad.reshape(-1)
            for idx in range(0, flat_param.size, max(1, flat_param.size // 5)):
                original = flat_param[idx]
                flat_param[idx] = original + eps
                up = loss_fn.forward(model.forward(x), y)
                flat_param[idx] = original - eps
                down = loss_fn.forward(model.forward(x), y)
                flat_param[idx] = original
                numeric = (up - down) / (2 * eps)
                assert flat_grad[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-6)
