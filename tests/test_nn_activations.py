"""Unit tests for repro.nn.activations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.activations import (
    ELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Softplus,
    Tanh,
    available_activations,
    get_activation,
)

ALL_ACTIVATIONS = [Identity(), ReLU(), LeakyReLU(), Sigmoid(), Tanh(), ELU(), Softplus(), Softmax()]


class TestForwardValues:
    def test_relu_clamps_negatives(self):
        z = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_allclose(ReLU().forward(z), [0.0, 0.0, 0.0, 0.5, 2.0])

    def test_identity_returns_input(self):
        z = np.array([-1.0, 0.0, 3.5])
        np.testing.assert_allclose(Identity().forward(z), z)

    def test_sigmoid_range_and_midpoint(self):
        z = np.array([-50.0, 0.0, 50.0])
        out = Sigmoid().forward(z)
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_is_numerically_stable_for_large_inputs(self):
        z = np.array([-1000.0, 1000.0])
        out = Sigmoid().forward(z)
        assert np.all(np.isfinite(out))

    def test_tanh_matches_numpy(self):
        z = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(Tanh().forward(z), np.tanh(z))

    def test_leaky_relu_negative_slope(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([-10.0, 10.0]))
        np.testing.assert_allclose(out, [-1.0, 10.0])

    def test_elu_continuity_at_zero(self):
        elu = ELU(alpha=1.0)
        assert elu.forward(np.array([0.0]))[0] == pytest.approx(0.0)
        assert elu.forward(np.array([-1e-9]))[0] == pytest.approx(0.0, abs=1e-8)

    def test_softplus_positive_everywhere(self):
        z = np.linspace(-20, 20, 41)
        assert np.all(Softplus().forward(z) > 0)

    def test_softmax_rows_sum_to_one(self):
        z = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        out = Softmax().forward(z)
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_invariant_to_constant_shift(self):
        z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(Softmax().forward(z), Softmax().forward(z + 100.0))


class TestDerivatives:
    @pytest.mark.parametrize("activation", ALL_ACTIVATIONS[:-1], ids=lambda a: a.name)
    def test_derivative_matches_finite_difference(self, activation):
        z = np.linspace(-2.0, 2.0, 9) + 0.1  # avoid the ReLU kink at exactly 0
        eps = 1e-6
        numeric = (activation.forward(z + eps) - activation.forward(z - eps)) / (2 * eps)
        np.testing.assert_allclose(activation.derivative(z), numeric, rtol=1e-4, atol=1e-6)

    def test_relu_derivative_is_zero_one(self):
        d = ReLU().derivative(np.array([-1.0, 1.0]))
        np.testing.assert_allclose(d, [0.0, 1.0])

    def test_sigmoid_derivative_peak_at_zero(self):
        d = Sigmoid().derivative(np.array([0.0]))
        assert d[0] == pytest.approx(0.25)


class TestRegistry:
    def test_available_contains_expected_names(self):
        names = available_activations()
        for expected in ("relu", "sigmoid", "tanh", "softmax", "elu"):
            assert expected in names

    def test_get_activation_by_name(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("  TANH "), Tanh)

    def test_get_activation_passthrough_instance(self):
        instance = ELU(alpha=0.5)
        assert get_activation(instance) is instance

    def test_get_activation_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("swishy")

    def test_equality_and_hash_by_name(self):
        assert ReLU() == ReLU()
        assert ReLU() != Tanh()
        assert len({ReLU(), ReLU(), Tanh()}) == 2


class TestValidation:
    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.1)

    def test_elu_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            ELU(alpha=0.0)
