"""Setup shim for editable installs in offline environments.

The project metadata lives in ``pyproject.toml``.  This file exists only so
that ``pip install -e .`` can fall back to the legacy ``setup.py develop``
path on machines where the ``wheel`` package (needed by PEP 660 editable
builds with older setuptools) is not available, such as fully offline
reproduction environments.
"""

from setuptools import setup

setup()
